//! Trace-driven cache measurement: replay the engine's exact memory
//! accesses through a simulated hierarchy.
//!
//! This replaces the paper's PAPI L1 data-cache miss counter. A leaf
//! codelet call at `(base, stride)` loads its `2^k` elements in index order
//! and then stores them in the same order (the codelet contract documented
//! in `wht_core::codelets`), so the trace is reproduced exactly without
//! touching data.

use wht_cachesim::{CacheConfig, CacheStats, ConfigError, Hierarchy};
use wht_core::{
    traverse, CompiledPlan, ExecHooks, PassBackend, Plan, Provenance, Relayout, SuperPass,
};

/// [`ExecHooks`] implementation that feeds every element access of the
/// computation through a [`Hierarchy`].
#[derive(Debug)]
pub struct TraceExecutor {
    hierarchy: Hierarchy,
}

impl TraceExecutor {
    /// Wrap a (typically cold) hierarchy.
    pub fn new(hierarchy: Hierarchy) -> Self {
        TraceExecutor { hierarchy }
    }

    /// Finish and return the hierarchy with its accumulated stats.
    pub fn into_hierarchy(self) -> Hierarchy {
        self.hierarchy
    }

    /// Borrow the hierarchy (e.g. to read stats mid-trace).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }
}

/// One leaf codelet's memory trace — the codelet contract documented in
/// `wht_core::codelets`: load the `2^k` elements in index order, then
/// store them in the same order. Every trace consumer in this module
/// shares this generator so segmented and aggregate traces cannot
/// diverge.
fn trace_leaf(hierarchy: &mut Hierarchy, k: u32, base: usize, stride: usize) {
    let size = 1usize << k;
    // Load pass.
    for j in 0..size {
        hierarchy.access_element(base + j * stride);
    }
    // Store pass (same addresses, same order).
    for j in 0..size {
        hierarchy.access_element(base + j * stride);
    }
}

/// One relayout gather's memory trace — the copy contract documented on
/// `wht_core::codelets::gather_rows`: each source element is read once and
/// its scratch slot written once, in copy order (row-major over the
/// block). Shared by both trace consumers in this module.
fn trace_gather(hierarchy: &mut Hierarchy, x_base: usize, rl: Relayout, scratch_base: usize) {
    for u in 0..rl.rows {
        for g in 0..rl.cols {
            hierarchy.access_element(x_base + u * rl.row_stride + g);
            hierarchy.access_element(scratch_base + u * rl.cols + g);
        }
    }
}

/// One relayout scatter's memory trace: the exact inverse copy (scratch
/// slot read, destination element written), same order.
fn trace_scatter(hierarchy: &mut Hierarchy, x_base: usize, rl: Relayout, scratch_base: usize) {
    for u in 0..rl.rows {
        for g in 0..rl.cols {
            hierarchy.access_element(scratch_base + u * rl.cols + g);
            hierarchy.access_element(x_base + u * rl.row_stride + g);
        }
    }
}

impl ExecHooks for TraceExecutor {
    #[inline]
    fn leaf_call(&mut self, k: u32, base: usize, stride: usize) {
        trace_leaf(&mut self.hierarchy, k, base, stride);
    }

    #[inline]
    fn relayout_gather(&mut self, x_base: usize, relayout: Relayout, scratch_base: usize) {
        trace_gather(&mut self.hierarchy, x_base, relayout, scratch_base);
    }

    #[inline]
    fn relayout_scatter(&mut self, x_base: usize, relayout: Relayout, scratch_base: usize) {
        trace_scatter(&mut self.hierarchy, x_base, relayout, scratch_base);
    }
}

/// Per-level stats of one cold execution of `plan` through `hierarchy`
/// (the hierarchy is reset first).
pub fn trace_misses(plan: &Plan, hierarchy: &mut Hierarchy) -> Vec<CacheStats> {
    hierarchy.reset();
    let mut exec = TraceExecutor::new(hierarchy.clone());
    traverse(plan, &mut exec);
    let result = exec.into_hierarchy();
    let stats: Vec<CacheStats> = (0..result.depth()).map(|i| result.stats(i)).collect();
    *hierarchy = result;
    stats
}

/// Per-level stats of one cold *compiled* execution through `hierarchy`
/// (reset first): the same [`TraceExecutor`] hooks driven by
/// [`CompiledPlan::traverse`], so the trace replays exactly the `Vec<Pass>`
/// program [`CompiledPlan::apply`] runs — measured and executed work share
/// one schedule and structurally cannot drift. Compiled execution is
/// pass-major rather than the interpreter's block-major order, so its miss
/// counts legitimately differ from [`trace_misses`]; that difference is
/// the schedule change, not measurement error.
pub fn trace_misses_compiled(
    compiled: &CompiledPlan,
    hierarchy: &mut Hierarchy,
) -> Vec<CacheStats> {
    hierarchy.reset();
    let mut exec = TraceExecutor::new(hierarchy.clone());
    compiled.traverse(&mut exec);
    let result = exec.into_hierarchy();
    let stats: Vec<CacheStats> = (0..result.depth()).map(|i| result.stats(i)).collect();
    *hierarchy = result;
    stats
}

/// Cache traffic of one super-pass of a fused replay: the schedule-level
/// observability behind the fusion layer (`wht_core::compile`) — each row
/// says how much of the vector one scheduling unit streamed and what it
/// cost in misses, so the miss reduction fusion buys is quantified per
/// super-pass rather than only in aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperPassTraffic {
    /// Fused factor count (1 for an unfused pass).
    pub parts: usize,
    /// Cache tiles the super-pass iterates.
    pub tiles: usize,
    /// Elements per tile.
    pub tile_elems: usize,
    /// Kernel backend the executor replays this super-pass with (recorded
    /// in the schedule; the lane backend loads `W`-element blocks but
    /// still reads and writes each element exactly once, so the access
    /// and miss columns are charged identically for both backends).
    pub backend: PassBackend,
    /// `Some` when the unit is a relayout super-pass (its "tiles" are
    /// gathered blocks): the row's accesses then include the gather and
    /// scatter copies — the two extra read/write sweeps relayout pays on
    /// top of the per-factor 1R/1W contract — so the cost of the
    /// transposes is measured, not just their benefit.
    pub relayout: Option<Relayout>,
    /// Which lowering stages produced this unit (per-stage provenance,
    /// straight off the schedule): e.g. `provenance.recodeleted > 0` says
    /// the re-codelet stage merged that many factors here, which
    /// is why the row has fewer, larger leaf calls than the factor list
    /// of the plan would suggest.
    pub provenance: Provenance,
    /// Element accesses issued by this super-pass (loads + stores).
    pub accesses: u64,
    /// L1 misses charged to this super-pass.
    pub l1_misses: u64,
}

/// [`ExecHooks`] consumer that segments the trace at super-pass
/// boundaries, charging each super-pass its own access/miss delta.
struct SuperPassTracer {
    hierarchy: Hierarchy,
    report: Vec<SuperPassTraffic>,
    open: Option<SuperPassTraffic>,
}

impl SuperPassTracer {
    fn close(&mut self) {
        if let Some(mut seg) = self.open.take() {
            let l1 = self.hierarchy.stats(0);
            seg.accesses = l1.accesses - seg.accesses;
            seg.l1_misses = l1.misses - seg.l1_misses;
            self.report.push(seg);
        }
    }
}

impl ExecHooks for SuperPassTracer {
    #[inline]
    fn super_pass(&mut self, sp: &SuperPass) {
        self.close();
        let l1 = self.hierarchy.stats(0);
        self.open = Some(SuperPassTraffic {
            parts: sp.parts().len(),
            tiles: sp.tiles(),
            tile_elems: sp.tile_elems(),
            backend: sp.backend(),
            relayout: sp.relayout(),
            provenance: sp.provenance(),
            accesses: l1.accesses,
            l1_misses: l1.misses,
        });
    }

    #[inline]
    fn leaf_call(&mut self, k: u32, base: usize, stride: usize) {
        trace_leaf(&mut self.hierarchy, k, base, stride);
    }

    #[inline]
    fn relayout_gather(&mut self, x_base: usize, relayout: Relayout, scratch_base: usize) {
        trace_gather(&mut self.hierarchy, x_base, relayout, scratch_base);
    }

    #[inline]
    fn relayout_scatter(&mut self, x_base: usize, relayout: Relayout, scratch_base: usize) {
        trace_scatter(&mut self.hierarchy, x_base, relayout, scratch_base);
    }
}

/// Per-super-pass traffic of one cold replay of `compiled` through
/// `hierarchy` (reset first): one [`SuperPassTraffic`] row per scheduling
/// unit, in execution order. Driven by the same
/// [`CompiledPlan::traverse`] the executor order comes from, so the rows
/// segment exactly the program [`CompiledPlan::apply`] runs — compare the
/// rows of `compiled` against `compiled.fuse(...)` to see where fusion
/// removes memory sweeps.
pub fn super_pass_traffic(
    compiled: &CompiledPlan,
    hierarchy: &mut Hierarchy,
) -> Vec<SuperPassTraffic> {
    hierarchy.reset();
    let mut tracer = SuperPassTracer {
        hierarchy: hierarchy.clone(),
        report: Vec::with_capacity(compiled.super_passes().len()),
        open: None,
    };
    compiled.traverse(&mut tracer);
    tracer.close();
    *hierarchy = tracer.hierarchy;
    tracer.report
}

/// Per-super-pass traffic of one cold **batched** replay of `compiled`
/// for a `rows × 2^n` batch through `hierarchy` (reset first): the same
/// tracer driven by [`CompiledPlan::traverse_batch`], so the rows segment
/// exactly the program [`CompiledPlan::apply_batch`] runs. Each engaged
/// lane group contributes one synthesized cross-transform unit — relayout
/// geometry `{rows: lanes, cols: 2^n}`, so its transpose pair is traced
/// like a relayout's gather/scatter copies, with the scaled head passes
/// running at resident scratch addresses — followed by one direct unit
/// whose `lanes` tiles are the group's rows; both carry
/// [`Provenance::batched`]. The sub-group remainder, and the whole batch
/// when no [`wht_core::BatchSchedule`] engages, replay the ordinary
/// per-row rows at each row's offset.
pub fn batch_super_pass_traffic(
    compiled: &CompiledPlan,
    rows: usize,
    lanes: usize,
    hierarchy: &mut Hierarchy,
) -> Vec<SuperPassTraffic> {
    hierarchy.reset();
    let mut tracer = SuperPassTracer {
        hierarchy: hierarchy.clone(),
        report: Vec::new(),
        open: None,
    };
    compiled.traverse_batch(rows, lanes, &mut tracer);
    tracer.close();
    *hierarchy = tracer.hierarchy;
    tracer.report
}

/// L1 and (if present) L2 miss counts of one cold execution on the paper's
/// Opteron hierarchy.
pub fn opteron_misses(plan: &Plan) -> (u64, u64) {
    let mut h = Hierarchy::opteron();
    let stats = trace_misses(plan, &mut h);
    (stats[0].misses, stats.get(1).map_or(0, |s| s.misses))
}

/// Miss count of one cold execution on a single-level direct-mapped cache
/// of `2^log2_capacity_elems` elements with single-element lines — the
/// geometry of the analytic model in `wht-models::cache`, for validation.
///
/// # Errors
/// [`ConfigError`] if the geometry is invalid (capacity of zero elements).
pub fn direct_mapped_unit_misses(
    plan: &Plan,
    log2_capacity_elems: u32,
) -> Result<u64, ConfigError> {
    let elem = 8usize;
    let cfg = CacheConfig::direct_mapped_unit_line(1usize << log2_capacity_elems, elem)?;
    let mut h = Hierarchy::single(cfg, elem)?;
    let stats = trace_misses(plan, &mut h);
    Ok(stats[0].misses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wht_models::{analytic_misses, ModelCache};

    #[test]
    fn fitting_plan_pays_compulsory_misses_only() {
        // Unit lines: compulsory misses = N. Any plan, any shape.
        for n in 1..=6u32 {
            for plan in [
                Plan::iterative(n).unwrap(),
                Plan::right_recursive(n).unwrap(),
                Plan::balanced(n, 2).unwrap(),
            ] {
                let m = direct_mapped_unit_misses(&plan, 10).unwrap();
                assert_eq!(m, 1 << n, "plan {plan}");
            }
        }
    }

    #[test]
    fn line_size_gives_spatial_locality() {
        // On the Opteron hierarchy (64-byte lines = 8 doubles), a fitting
        // transform pays N/8 compulsory line misses.
        let plan = Plan::right_recursive(10).unwrap();
        let (l1, l2) = opteron_misses(&plan);
        assert_eq!(l1, 1 << 7);
        assert_eq!(l2, 1 << 7);
    }

    #[test]
    fn analytic_model_matches_simulator_for_single_level_splits() {
        // One split level: the model's cold-footprint recursion is exact.
        let c = 6u32;
        for plan in [
            Plan::iterative(9).unwrap(),
            Plan::binary_iterative(9, 3).unwrap(),
            Plan::split(vec![Plan::Leaf { k: 4 }, Plan::Leaf { k: 5 }]).unwrap(),
            Plan::split(vec![Plan::Leaf { k: 5 }, Plan::Leaf { k: 4 }]).unwrap(),
            Plan::split(vec![Plan::Leaf { k: 8 }, Plan::Leaf { k: 1 }]).unwrap(),
        ] {
            let sim = direct_mapped_unit_misses(&plan, c).unwrap();
            let model = analytic_misses(&plan, ModelCache { log2_capacity: c });
            assert_eq!(sim, model, "plan {plan}");
        }
    }

    #[test]
    fn analytic_model_close_for_recursive_plans() {
        // Deep trees: the cold-refill assumption may miss rare boundary
        // survivals; require exactness or a very small relative gap, and
        // record the regime here.
        let c = 7u32;
        for n in [9u32, 11, 13] {
            for plan in [
                Plan::right_recursive(n).unwrap(),
                Plan::left_recursive(n).unwrap(),
                Plan::balanced(n, 4).unwrap(),
            ] {
                let sim = direct_mapped_unit_misses(&plan, c).unwrap() as f64;
                let model = analytic_misses(&plan, ModelCache { log2_capacity: c }) as f64;
                let rel = (sim - model).abs() / sim;
                assert!(
                    rel < 0.02,
                    "plan {plan}: sim {sim} vs model {model} (rel {rel:.4})"
                );
            }
        }
    }

    #[test]
    fn compiled_trace_same_accesses_fewer_or_equal_misses_for_canonicals() {
        // Same access multiset (one load + one store per element per
        // level), pass-major order. For the deep canonical recursions the
        // compiled schedule equals the iterative one, whose locality is no
        // worse on the Opteron hierarchy at these sizes.
        for n in [8u32, 12] {
            for plan in [
                Plan::right_recursive(n).unwrap(),
                Plan::left_recursive(n).unwrap(),
                Plan::iterative(n).unwrap(),
            ] {
                let compiled = wht_core::CompiledPlan::compile(&plan);
                let mut h = Hierarchy::opteron();
                let interp = trace_misses(&plan, &mut h);
                let mut h2 = Hierarchy::opteron();
                let flat = trace_misses_compiled(&compiled, &mut h2);
                assert_eq!(flat[0].accesses, interp[0].accesses, "plan {plan}");
                assert!(
                    flat[0].misses <= interp[0].misses,
                    "plan {plan}: compiled {} vs interpreted {}",
                    flat[0].misses,
                    interp[0].misses
                );
            }
        }
    }

    #[test]
    fn fusion_cuts_l1_misses_and_the_report_localizes_the_win() {
        use wht_core::{CompiledPlan, FusionPolicy};
        // n = 16 (512 KiB of f64) on the Opteron hierarchy (64 KiB L1):
        // unfused, every one of the 16 radix-2 factors sweeps the whole
        // vector through L1; with a half-L1 tile budget the first 12
        // factors fuse into one compulsory-miss sweep.
        let n = 16u32;
        let plan = Plan::iterative(n).unwrap();
        let compiled = CompiledPlan::compile(&plan);
        let fused = compiled.fuse(&FusionPolicy::new(1 << 12));
        assert!(fused.is_fused());

        let mut h = Hierarchy::opteron();
        let unfused_misses = trace_misses_compiled(&compiled, &mut h)[0].misses;
        let mut h = Hierarchy::opteron();
        let fused_misses = trace_misses_compiled(&fused, &mut h)[0].misses;
        assert!(
            fused_misses * 2 < unfused_misses,
            "fused {fused_misses} should be far below unfused {unfused_misses}"
        );

        let mut h = Hierarchy::opteron();
        let report = super_pass_traffic(&fused, &mut h);
        assert_eq!(report.len(), fused.super_passes().len());
        // Access totals are fusion-invariant: one load + one store per
        // element per factor, distributed across the rows.
        let total_accesses: u64 = report.iter().map(|r| r.accesses).sum();
        assert_eq!(total_accesses, 2 * (1u64 << n) * u64::from(n));
        let total_misses: u64 = report.iter().map(|r| r.l1_misses).sum();
        assert_eq!(
            total_misses, fused_misses,
            "segments must partition the trace"
        );
        // The fused head does 12 factors of work...
        let head = &report[0];
        assert_eq!((head.parts, head.tiles, head.tile_elems), (12, 16, 1 << 12));
        assert_eq!(head.accesses, 2 * (1u64 << n) * 12);
        // ...for about one compulsory sweep of misses (N/8 on 64-byte
        // lines), while every unfused tail pass pays a full sweep again.
        assert!(
            head.l1_misses <= 2 * (1u64 << (n - 3)),
            "fused head misses {} should be near-compulsory",
            head.l1_misses
        );
        for row in &report[1..] {
            assert_eq!(row.parts, 1);
            assert!(
                row.l1_misses >= 1u64 << (n - 3),
                "tail passes sweep the vector"
            );
        }
    }

    #[test]
    fn backend_selection_never_changes_the_accounting() {
        use wht_core::{CompiledPlan, FusionPolicy, SimdPolicy};
        // The lane kernels load W-element blocks, but the accounting
        // contract — one read and one write per element per pass — is
        // backend-invariant, so the trace executor charges SIMD and scalar
        // schedules identically while the report records which kernel ran.
        let plan = Plan::iterative(14).unwrap();
        let scalar = CompiledPlan::compile_fused(&plan, &FusionPolicy::new(1 << 10));
        let simd = scalar.with_simd(&SimdPolicy::auto());

        let mut h = Hierarchy::opteron();
        let scalar_stats = trace_misses_compiled(&scalar, &mut h);
        let mut h = Hierarchy::opteron();
        let simd_stats = trace_misses_compiled(&simd, &mut h);
        assert_eq!(scalar_stats, simd_stats);

        let mut h = Hierarchy::opteron();
        let scalar_rows = super_pass_traffic(&scalar, &mut h);
        let mut h = Hierarchy::opteron();
        let simd_rows = super_pass_traffic(&simd, &mut h);
        assert_eq!(scalar_rows.len(), simd_rows.len());
        for (a, b) in scalar_rows.iter().zip(simd_rows.iter()) {
            assert_eq!(a.backend, PassBackend::Scalar);
            assert_eq!(b.backend, PassBackend::Lanes);
            assert_eq!(
                (a.parts, a.tiles, a.tile_elems, a.accesses, a.l1_misses),
                (b.parts, b.tiles, b.tile_elems, b.accesses, b.l1_misses),
            );
        }
    }

    #[test]
    fn relayout_accounting_charges_the_two_extra_sweeps_and_cuts_misses() {
        use wht_core::{CompiledPlan, FusionPolicy, RelayoutPolicy};
        // n = 16 on the Opteron hierarchy (64 KiB L1): fuse the first 10
        // factors (8 KiB tiles), then relayout the 6-pass tail into
        // 2^12-element gathered blocks.
        let n = 16u32;
        let plan = Plan::iterative(n).unwrap();
        let fused = CompiledPlan::compile_fused(&plan, &FusionPolicy::new(1 << 10));
        let relaid = fused.relayout(&RelayoutPolicy::eager(1 << 12));
        assert!(relaid.has_relayout());
        let tail_parts = relaid.super_passes().last().unwrap().parts().len() as u64;
        assert_eq!(tail_parts, 6);

        // The 1R/1W-per-element contract generalizes: every factor still
        // accesses each element twice, and the relayout unit additionally
        // pays the gather and scatter copies — 2 accesses per element per
        // copy over the full vector.
        let mut h = Hierarchy::opteron();
        let report = super_pass_traffic(&relaid, &mut h);
        let size = 1u64 << n;
        let total: u64 = report.iter().map(|r| r.accesses).sum();
        assert_eq!(total, 2 * size * u64::from(n) + 4 * size);
        let tail = report.last().unwrap();
        assert!(tail.relayout.is_some());
        assert_eq!(tail.accesses, 2 * size * tail_parts + 4 * size);
        for row in &report[..report.len() - 1] {
            assert_eq!(row.relayout, None);
        }

        // And the win: the relayouted tail's misses collapse to about the
        // copies' compulsory sweeps, far below the per-factor sweeps the
        // in-place tail pays.
        let mut h = Hierarchy::opteron();
        let fused_misses: u64 = super_pass_traffic(&fused, &mut h)
            .iter()
            .skip(1)
            .map(|r| r.l1_misses)
            .sum();
        let mut h = Hierarchy::opteron();
        let relaid_misses: u64 = super_pass_traffic(&relaid, &mut h)
            .iter()
            .skip(1)
            .map(|r| r.l1_misses)
            .sum();
        assert!(
            relaid_misses * 2 < fused_misses,
            "relayout tail misses {relaid_misses} should be far below the \
             sweeping tail's {fused_misses}"
        );

        // Aggregate per-level stats agree between the two trace consumers.
        let mut h = Hierarchy::opteron();
        let stats = trace_misses_compiled(&relaid, &mut h);
        let mut h = Hierarchy::opteron();
        let segmented: u64 = super_pass_traffic(&relaid, &mut h)
            .iter()
            .map(|r| r.l1_misses)
            .sum();
        assert_eq!(stats[0].misses, segmented);
    }

    #[test]
    fn recodeleted_accounting_reports_provenance_and_saved_passes() {
        use wht_core::{CompiledPlan, FusionPolicy, RecodeletPolicy, RelayoutPolicy};
        // Same geometry as the relayout accounting test; re-codeleting
        // merges the 6 chained scratch factors into [4, 2] and the
        // 10-part fused head into [4, 4, 2], so the 1R/1W-per-pass
        // contract now charges each unit 2 accesses per element per
        // *merged* pass — the measured counterpart of the stage's saved
        // load/store passes.
        let n = 16u32;
        let plan = Plan::iterative(n).unwrap();
        let relaid = CompiledPlan::compile_fused(&plan, &FusionPolicy::new(1 << 10))
            .relayout(&RelayoutPolicy::eager(1 << 12));
        let merged = relaid.recodelet(&RecodeletPolicy::default());
        assert!(merged.has_recodeleted());
        let size = 1u64 << n;
        let mut h = Hierarchy::opteron();
        let report = super_pass_traffic(&merged, &mut h);
        assert_eq!(report.len(), 2);
        // Per-stage provenance travels into the traffic report.
        let head = &report[0];
        assert!(head.provenance.fused && !head.provenance.relayouted);
        assert_eq!(head.provenance.recodeleted, 7, "10 factors -> [4, 4, 2]");
        assert_eq!(head.parts, 3);
        assert_eq!(head.accesses, 2 * size * 3);
        let tail = report.last().unwrap();
        assert!(tail.provenance.relayouted);
        assert_eq!(tail.provenance.recodeleted, 4, "6 factors -> [4, 2]");
        assert_eq!(tail.parts, 2);
        assert_eq!(tail.accesses, 2 * size * 2 + 4 * size);
        // The merged schedule accesses strictly less than the per-factor
        // one (2·6 + 4 tail sweeps before, 2·2 + 4 after).
        let mut h = Hierarchy::opteron();
        let per_factor_tail = super_pass_traffic(&relaid, &mut h).last().unwrap().accesses;
        assert_eq!(per_factor_tail, 2 * size * 6 + 4 * size);
        assert!(tail.accesses < per_factor_tail);
    }

    #[test]
    fn batched_traffic_reports_the_synthesized_units_and_partitions_the_bill() {
        use wht_core::{BatchPolicy, CompiledPlan};
        let n = 12u32;
        let w = 8usize; // f64 lane width
        let rows = 19usize; // 2 full lane groups + 3 remainder rows
        let plan = Plan::iterative(n).unwrap();
        let compiled = CompiledPlan::compile(&plan).with_batch(&BatchPolicy::new(1));
        let b = compiled.batch_schedule().unwrap();
        let (cross, tail) = (b.cross().len() as u64, b.tail().len() as u64);
        assert!(cross > 0 && tail > 0);

        let mut h = Hierarchy::opteron();
        let report = batch_super_pass_traffic(&compiled, rows, w, &mut h);
        let groups = rows / w;
        let units = compiled.super_passes().len();
        assert_eq!(report.len(), groups * 2 + (rows % w) * units);
        let size = 1u64 << n;
        let group_elems = (w as u64) * size;
        for g in 0..groups {
            // One synthesized cross-transform unit per group: a
            // relayout-shaped transpose pair (4 accesses per group
            // element) around the scaled head passes...
            let head = &report[g * 2];
            assert!(head.provenance.batched);
            let rl = head.relayout.unwrap();
            assert_eq!((rl.rows, rl.cols), (w, 1usize << n));
            assert_eq!(head.accesses, 2 * group_elems * cross + 4 * group_elems);
            // ...then one direct unit replaying the tail over the
            // group's rows as its tiles.
            let rest = &report[g * 2 + 1];
            assert!(rest.provenance.batched);
            assert_eq!(rest.relayout, None);
            assert_eq!(rest.tiles, w);
            assert_eq!(rest.accesses, 2 * group_elems * tail);
        }
        // The remainder replays the ordinary schedule, unmarked.
        for row in &report[groups * 2..] {
            assert!(!row.provenance.batched);
        }
        // Aggregate bill: rows × the per-row accesses, plus exactly the
        // two transpose copies per engaged group.
        let mut h = Hierarchy::opteron();
        let single: u64 = super_pass_traffic(&compiled, &mut h)
            .iter()
            .map(|r| r.accesses)
            .sum();
        let total: u64 = report.iter().map(|r| r.accesses).sum();
        assert_eq!(
            total,
            single * rows as u64 + groups as u64 * 4 * group_elems
        );
    }

    #[test]
    fn trace_stats_reset_between_runs() {
        let plan = Plan::iterative(8).unwrap();
        let mut h = Hierarchy::opteron();
        let first = trace_misses(&plan, &mut h);
        let second = trace_misses(&plan, &mut h);
        assert_eq!(first, second, "cold-start runs must be identical");
    }

    #[test]
    fn access_counts_match_structure() {
        // Every leaf call makes 2 * 2^k accesses; totals must equal
        // 2 * N * leaf_count (each element loaded+stored once per level).
        let plan = Plan::balanced(10, 3).unwrap();
        let mut h = Hierarchy::opteron();
        let stats = trace_misses(&plan, &mut h);
        let want = 2 * (1u64 << 10) * plan.leaf_count() as u64;
        assert_eq!(stats[0].accesses, want);
    }
}
