//! Wall-clock timing of the real execution engine.
//!
//! Substitute for the paper's PAPI cycle counter: the same quantity
//! (time to apply one WHT) measured with the monotonic clock on the host
//! CPU instead of a hardware cycle register. Methodology: warmup runs, then
//! `reps` timed blocks, reporting the **median** block time (robust to
//! scheduler noise) normalized per transform.
//!
//! Because the WHT is applied in place, repeated application grows values
//! by a factor of `N` each time and would overflow `f64` after ~50
//! applications at n = 20. Each timed block therefore applies the transform
//! `iters_per_block` times (chosen so the growth stays finite) and the
//! buffer is refilled from the pristine input between blocks, *outside* the
//! timed region.

use std::time::Instant;
use wht_core::{apply_plan_recursive, CompiledPlan, Plan, WhtError};

/// Timing methodology parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingConfig {
    /// Untimed warmup transforms (page in the buffer, train the branch
    /// predictors, populate caches).
    pub warmup: usize,
    /// Timed blocks; the median block is reported.
    pub reps: usize,
    /// Transforms per timed block, or 0 to auto-size so that one block
    /// neither overflows `f64` nor takes unmeasurably little time.
    pub iters_per_block: usize,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            warmup: 2,
            reps: 5,
            iters_per_block: 0,
        }
    }
}

impl TimingConfig {
    /// Quick preset for tests and smoke runs.
    pub fn fast() -> Self {
        TimingConfig {
            warmup: 1,
            reps: 3,
            iters_per_block: 0,
        }
    }

    /// Resolve `iters_per_block` for a transform of size `2^n`.
    ///
    /// `f64` holds up to ~1e308 = 2^1023 and each application multiplies
    /// magnitudes by at most `2^n`, so `900 / n` applications are safe from
    /// a unit-scale start; small transforms get more iterations per block so
    /// a block is long enough to time reliably.
    pub fn resolved_iters(&self, n: u32) -> usize {
        if self.iters_per_block > 0 {
            return self.iters_per_block;
        }
        let overflow_cap = (900 / n.max(1)) as usize;
        // Target at least ~2^22 butterflies per block for clock resolution.
        let per_run = u64::from(n) << n;
        let for_resolution = ((1u64 << 22) / per_run.max(1)).max(1) as usize;
        for_resolution.min(overflow_cap).max(1)
    }
}

/// Result of timing one plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingResult {
    /// Median time per single transform, in nanoseconds.
    pub median_ns: f64,
    /// Fastest observed time per transform, in nanoseconds.
    pub min_ns: f64,
    /// Number of timed blocks.
    pub reps: usize,
    /// Transforms per block after resolution.
    pub iters_per_block: usize,
}

/// Time the recursive *interpreter* on `plan`, on freshly allocated data.
///
/// This deliberately times [`apply_plan_recursive`] — the paper's measured
/// artifact — so that wall-clock numbers stay consistent with the
/// instrumented counts and traces in one [`crate::Measurement`], which are
/// all derived from the recursive loop nest. Use [`time_compiled_plan`]
/// to time the compiled execution layer.
///
/// # Errors
/// [`WhtError::InvalidConfig`] for zero `reps`.
pub fn time_plan(plan: &Plan, cfg: &TimingConfig) -> Result<TimingResult, WhtError> {
    time_apply(plan.n(), cfg, |buf| apply_plan_recursive(plan, buf))
}

/// Time the compiled-schedule executor ([`CompiledPlan::apply`]) on
/// freshly allocated data — the production fast path's number.
///
/// # Errors
/// [`WhtError::InvalidConfig`] for zero `reps`.
pub fn time_compiled_plan(
    compiled: &CompiledPlan,
    cfg: &TimingConfig,
) -> Result<TimingResult, WhtError> {
    time_apply(compiled.n(), cfg, |buf| compiled.apply(buf))
}

/// Shared timing methodology (see the module docs) over any in-place
/// transform of size `2^n`.
fn time_apply(
    n: u32,
    cfg: &TimingConfig,
    mut apply: impl FnMut(&mut [f64]) -> Result<(), WhtError>,
) -> Result<TimingResult, WhtError> {
    if cfg.reps == 0 {
        return Err(WhtError::InvalidConfig("reps must be >= 1".into()));
    }
    let size = 1usize << n;
    let iters = cfg.resolved_iters(n);

    // Pristine input: unit-scale pseudo-random values, fixed seed.
    let pristine: Vec<f64> = (0..size)
        .map(|j| {
            let h = (j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 40) as f64) / ((1u64 << 24) as f64) - 0.5
        })
        .collect();
    let mut buf = pristine.clone();

    for _ in 0..cfg.warmup {
        apply(&mut buf)?;
    }

    let mut per_transform: Vec<f64> = Vec::with_capacity(cfg.reps);
    for _ in 0..cfg.reps {
        buf.copy_from_slice(&pristine);
        let start = Instant::now();
        for _ in 0..iters {
            apply(&mut buf)?;
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        per_transform.push(elapsed / iters as f64);
    }
    per_transform.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    let median_ns = per_transform[per_transform.len() / 2];
    let min_ns = per_transform[0];
    Ok(TimingResult {
        median_ns,
        min_ns,
        reps: cfg.reps,
        iters_per_block: iters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_reports_positive_times() {
        let plan = Plan::right_recursive(8).unwrap();
        let r = time_plan(&plan, &TimingConfig::fast()).unwrap();
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
        assert_eq!(r.reps, 3);
    }

    #[test]
    fn compiled_timing_reports_positive_times() {
        let compiled = CompiledPlan::compile(&Plan::right_recursive(8).unwrap());
        let r = time_compiled_plan(&compiled, &TimingConfig::fast()).unwrap();
        assert!(r.median_ns > 0.0 && r.min_ns <= r.median_ns);
        let cfg = TimingConfig {
            reps: 0,
            ..TimingConfig::default()
        };
        assert!(time_compiled_plan(&compiled, &cfg).is_err());
    }

    #[test]
    fn iteration_resolution_respects_overflow_cap() {
        let cfg = TimingConfig::default();
        // n = 20: cap = 900/20 = 45 blocks.
        assert!(cfg.resolved_iters(20) <= 45);
        // small n: many iterations for resolution, but bounded by cap.
        assert!(cfg.resolved_iters(2) <= 450);
        assert!(cfg.resolved_iters(2) > 10);
        // explicit override wins:
        let fixed = TimingConfig {
            iters_per_block: 7,
            ..TimingConfig::default()
        };
        assert_eq!(fixed.resolved_iters(20), 7);
    }

    #[test]
    fn zero_reps_rejected() {
        let plan = Plan::leaf(3).unwrap();
        let cfg = TimingConfig {
            reps: 0,
            ..TimingConfig::default()
        };
        assert!(time_plan(&plan, &cfg).is_err());
    }

    #[test]
    fn bigger_transforms_take_longer() {
        let cfg = TimingConfig::fast();
        let small = time_plan(&Plan::right_recursive(6).unwrap(), &cfg).unwrap();
        let large = time_plan(&Plan::right_recursive(14).unwrap(), &cfg).unwrap();
        assert!(
            large.median_ns > small.median_ns,
            "2^14 ({}) should beat 2^6 ({}) comfortably",
            large.median_ns,
            small.median_ns
        );
    }
}
