//! # wht-measure — the measurement substrate (PAPI substitute)
//!
//! The paper measures cycle counts, instruction counts, and data-cache
//! misses with PAPI 1.3.2 on an Opteron 224. This crate reproduces each
//! counter (see DESIGN.md §3 for the substitution argument):
//!
//! | paper counter | here |
//! |---------------|------|
//! | PAPI cycles   | [`timer`] — wall-clock median timing of the real engine; [`simcycles`] — deterministic cycles on a simulated Opteron |
//! | PAPI instructions | [`instrumented`] — hook-driven operation counting of the exact loop nest |
//! | PAPI L1 data misses | [`trace`] — exact memory trace through `wht-cachesim` hierarchies |
//!
//! [`record::measure_plan`] bundles all of them into one [`Measurement`]
//! per algorithm — a row of the paper's experimental data.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ddl_trace;
pub mod instrumented;
pub mod policy_trace;
pub mod pool;
pub mod record;
pub mod simcycles;
pub mod timer;
pub mod trace;

pub use ddl_trace::ddl_trace_misses;
pub use instrumented::{
    batch_instruction_count, batch_op_counts, compiled_instruction_count, compiled_op_counts,
    measured_instruction_count, measured_op_counts, InstructionCounter,
};
pub use policy_trace::{opteron_l1_policy_misses, policy_trace_misses};
pub use pool::PoolReport;
pub use record::{measure_plan, MeasureOptions, Measurement};
pub use simcycles::{simulated_cycles, SimMachine};
pub use timer::{time_compiled_plan, time_plan, TimingConfig, TimingResult};
pub use trace::{
    batch_super_pass_traffic, direct_mapped_unit_misses, opteron_misses, super_pass_traffic,
    trace_misses, trace_misses_compiled, SuperPassTraffic, TraceExecutor,
};
