//! Trace-driven miss measurement for the DDL engine variant.
//!
//! Mirrors `wht_core::ddl::apply_plan_ddl`'s memory behaviour exactly:
//! where the DDL engine gathers a strided subtransform into contiguous
//! scratch, the trace emits the strided reads, the scratch writes/reads
//! (scratch addresses live past the end of the data array, as a freshly
//! allocated buffer would), the contiguous transform's accesses, and the
//! strided write-back — so the *cost* of relayout is measured, not just
//! its benefit.

use wht_cachesim::Hierarchy;
use wht_core::plan::Plan;

/// Per-level stats of one cold DDL execution of `plan` through `hierarchy`
/// (reset first). `stride_threshold_log2` as in `wht_core::ddl::DdlConfig`;
/// a threshold exponent that overflows `usize` saturates to "never
/// relayout" (no stride in a valid plan can reach it) instead of wrapping
/// the shift, mirroring `DdlConfig::validate`'s intent for this
/// `Result`-free measurement helper.
pub fn ddl_trace_misses(
    plan: &Plan,
    hierarchy: &mut Hierarchy,
    stride_threshold_log2: u32,
) -> Vec<wht_cachesim::CacheStats> {
    hierarchy.reset();
    // Scratch lives just past the data array (aligned to a line).
    let scratch_base = plan.size().next_multiple_of(64);
    let mut ctx = DdlTrace {
        hierarchy,
        threshold: 1usize
            .checked_shl(stride_threshold_log2)
            .unwrap_or(usize::MAX),
        scratch_base,
    };
    ctx.rec(plan, 0, 1);
    (0..hierarchy.depth()).map(|i| hierarchy.stats(i)).collect()
}

struct DdlTrace<'a> {
    hierarchy: &'a mut Hierarchy,
    threshold: usize,
    scratch_base: usize,
}

impl DdlTrace<'_> {
    fn rec(&mut self, plan: &Plan, base: usize, stride: usize) {
        let size = plan.size();
        if stride >= self.threshold && size > 1 {
            // Gather: strided reads + contiguous scratch writes.
            for j in 0..size {
                self.hierarchy.access_element(base + j * stride);
                self.hierarchy.access_element(self.scratch_base + j);
            }
            // Contiguous transform in scratch (never re-relayouts).
            let saved = self.threshold;
            self.threshold = usize::MAX;
            self.rec(plan, self.scratch_base, 1);
            self.threshold = saved;
            // Scatter: contiguous reads + strided writes.
            for j in 0..size {
                self.hierarchy.access_element(self.scratch_base + j);
                self.hierarchy.access_element(base + j * stride);
            }
            return;
        }
        match plan {
            Plan::Leaf { k } => {
                let n = 1usize << k;
                for j in 0..n {
                    self.hierarchy.access_element(base + j * stride);
                }
                for j in 0..n {
                    self.hierarchy.access_element(base + j * stride);
                }
            }
            Plan::Split { n, children } => {
                let mut r = 1usize << n;
                let mut s = 1usize;
                for child in children.iter().rev() {
                    let ni = 1usize << child.n();
                    r /= ni;
                    for j in 0..r {
                        for k in 0..s {
                            self.rec(child, base + (j * ni * s + k) * stride, s * stride);
                        }
                    }
                    s *= ni;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::trace_misses;

    #[test]
    fn huge_threshold_reduces_to_plain_trace_plus_nothing() {
        // With a threshold no stride reaches, the DDL trace is the plain
        // trace exactly.
        let plan = Plan::right_recursive(12).unwrap();
        let mut h1 = Hierarchy::opteron();
        let plain = trace_misses(&plan, &mut h1);
        let mut h2 = Hierarchy::opteron();
        let ddl = ddl_trace_misses(&plan, &mut h2, 30);
        assert_eq!(plain, ddl);
        // Regression: an exponent that overflows usize must saturate to
        // the same "never relayout" trace, not wrap the shift to
        // threshold 1 (which would gather every subtransform).
        let mut h3 = Hierarchy::opteron();
        let saturated = ddl_trace_misses(&plan, &mut h3, u32::MAX);
        assert_eq!(plain, saturated);
    }

    /// The headline DDL effect: for the cache-hostile left recursion out of
    /// L1, relayout cuts L1 misses substantially despite the copy cost.
    #[test]
    fn ddl_reduces_left_recursive_misses_out_of_cache() {
        let n = 15u32;
        let plan = Plan::left_recursive(n).unwrap();
        let mut h = Hierarchy::opteron();
        let plain = trace_misses(&plan, &mut h)[0].misses;
        let ddl = ddl_trace_misses(&plan, &mut h, 3)[0].misses;
        assert!(
            (ddl as f64) < 0.7 * plain as f64,
            "DDL should cut left-recursive L1 misses: {ddl} vs {plain}"
        );
    }

    /// In-cache, relayout only adds copies: DDL must not *reduce* misses
    /// below compulsory, and the overhead stays bounded.
    #[test]
    fn ddl_in_cache_costs_only_copies() {
        let n = 9u32;
        let plan = Plan::left_recursive(n).unwrap();
        let mut h = Hierarchy::opteron();
        let plain = trace_misses(&plan, &mut h)[0].misses;
        let ddl = ddl_trace_misses(&plan, &mut h, 3)[0].misses;
        assert!(ddl >= plain);
        assert!(
            ddl <= 3 * plain,
            "copy overhead out of bounds: {ddl} vs {plain}"
        );
    }
}
