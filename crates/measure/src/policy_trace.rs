//! Trace-driven measurement against the configurable [`PolicyCache`] —
//! the ablation companion to [`crate::trace`].
//!
//! Used to quantify how far the paper's modelling assumptions (direct
//! mapped, no prefetch) sit from the measured machine (2-way LRU with a
//! stream prefetcher): same plan, same trace, different cache machinery.

use wht_cachesim::{CacheConfig, PolicyCache, PolicyStats, Replacement};
use wht_core::{traverse, ExecHooks, Plan};

struct PolicyTraceHooks<'a> {
    cache: &'a mut PolicyCache,
    elem_size: usize,
}

impl ExecHooks for PolicyTraceHooks<'_> {
    #[inline]
    fn leaf_call(&mut self, k: u32, base: usize, stride: usize) {
        let size = 1usize << k;
        for j in 0..size {
            self.cache
                .access(((base + j * stride) * self.elem_size) as u64);
        }
        for j in 0..size {
            self.cache
                .access(((base + j * stride) * self.elem_size) as u64);
        }
    }
}

/// Stats of one cold execution of `plan` through a [`PolicyCache`]
/// (reset first). `elem_size` is the element width in bytes (8 for `f64`).
pub fn policy_trace_misses(plan: &Plan, cache: &mut PolicyCache, elem_size: usize) -> PolicyStats {
    cache.reset();
    let mut hooks = PolicyTraceHooks { cache, elem_size };
    traverse(plan, &mut hooks);
    hooks.cache.stats()
}

/// Convenience: misses of one cold run under a given replacement policy and
/// prefetch setting, on the Opteron L1 geometry.
pub fn opteron_l1_policy_misses(plan: &Plan, policy: Replacement, prefetch: bool) -> PolicyStats {
    let mut cache = PolicyCache::new(CacheConfig::opteron_l1(), policy, prefetch);
    policy_trace_misses(plan, &mut cache, 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_policy_trace_matches_base_trace() {
        for plan in [
            Plan::iterative(12).unwrap(),
            Plan::right_recursive(12).unwrap(),
            Plan::balanced(14, 4).unwrap(),
        ] {
            let base = crate::trace::opteron_misses(&plan).0;
            let policy = opteron_l1_policy_misses(&plan, Replacement::Lru, false);
            assert_eq!(policy.misses, base, "plan {plan}");
        }
    }

    #[test]
    fn prefetch_only_reduces_misses() {
        for plan in [
            Plan::iterative(15).unwrap(),
            Plan::right_recursive(15).unwrap(),
            Plan::left_recursive(15).unwrap(),
        ] {
            let off = opteron_l1_policy_misses(&plan, Replacement::Lru, false);
            let on = opteron_l1_policy_misses(&plan, Replacement::Lru, true);
            assert!(
                on.misses <= off.misses,
                "prefetch increased misses for {plan}: {} vs {}",
                on.misses,
                off.misses
            );
        }
    }

    #[test]
    fn prefetch_helps_sequential_shapes_most() {
        // The iterative algorithm's passes are address-sequential; the left
        // recursion's pairwise passes stride. The prefetcher's relative gain
        // must be larger for the iterative plan.
        let n = 15u32;
        let it_off =
            opteron_l1_policy_misses(&Plan::iterative(n).unwrap(), Replacement::Lru, false);
        let it_on = opteron_l1_policy_misses(&Plan::iterative(n).unwrap(), Replacement::Lru, true);
        let lr_off =
            opteron_l1_policy_misses(&Plan::left_recursive(n).unwrap(), Replacement::Lru, false);
        let lr_on =
            opteron_l1_policy_misses(&Plan::left_recursive(n).unwrap(), Replacement::Lru, true);
        let it_gain = it_off.misses as f64 / it_on.misses.max(1) as f64;
        let lr_gain = lr_off.misses as f64 / lr_on.misses.max(1) as f64;
        assert!(
            it_gain > lr_gain,
            "iterative gain {it_gain} should exceed left-recursive gain {lr_gain}"
        );
    }

    #[test]
    fn direct_mapped_has_at_least_lru_misses_on_wht_traces() {
        // Conflict misses only grow when associativity drops (not a theorem
        // in general — Belady anomalies exist — but holds for these regular
        // traces and documents the gap [8]'s model sits across).
        let plan = Plan::right_recursive(14).unwrap();
        let two_way = opteron_l1_policy_misses(&plan, Replacement::Lru, false);
        let direct = {
            let cfg = CacheConfig::new(64 * 1024, 1, 64).unwrap();
            let mut cache = PolicyCache::new(cfg, Replacement::Lru, false);
            policy_trace_misses(&plan, &mut cache, 8)
        };
        assert!(direct.misses >= two_way.misses);
    }
}
