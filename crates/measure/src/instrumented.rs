//! Instrumented execution: measure operation counts by *running* the loop
//! nest.
//!
//! This is the measurement-side counterpart of the analytic model in
//! `wht-models::instructions` — the role PAPI's retired-instruction counter
//! plays in the paper. The counter is an [`ExecHooks`] implementation driven
//! by the engine's own traversal, so it counts exactly what
//! `wht_core::apply_plan` executes. `measured == modelled`, exactly, is a
//! tested invariant of the workspace (it is the paper's "the models can be
//! computed from a high-level description" property).

use wht_core::{traverse, CompiledPlan, ExecHooks, Plan};
use wht_models::{CostModel, OpCounts};

/// [`ExecHooks`] accumulator for operation counts.
#[derive(Debug, Default, Clone)]
pub struct InstructionCounter {
    counts: OpCounts,
}

impl InstructionCounter {
    /// Fresh counter with all categories at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counts accumulated so far.
    pub fn counts(&self) -> OpCounts {
        self.counts
    }
}

impl ExecHooks for InstructionCounter {
    #[inline]
    fn enter_split(&mut self, _n: u32, t: usize) {
        self.counts.node_invocations += 1;
        self.counts.outer_iters += t as u64;
    }

    #[inline]
    fn child_loops(&mut self, child_n: u32, r: usize, s: usize) {
        // The j loop runs r times; the k loop runs r*s times in total —
        // identical bookkeeping to the model's recurrence.
        let _ = child_n;
        self.counts.j_iters += r as u64;
        self.counts.k_iters += (r * s) as u64;
    }

    #[inline]
    fn leaf_call(&mut self, k: u32, _base: usize, _stride: usize) {
        let size = 1u64 << k;
        self.counts.leaf_calls += 1;
        self.counts.arith += u64::from(k) * size;
        self.counts.loads += size;
        self.counts.stores += size;
        self.counts.addr += 2 * size;
    }

    #[inline]
    fn relayout_gather(&mut self, _x_base: usize, rl: wht_core::Relayout, _scratch: usize) {
        // One load (strided source), one store (scratch slot), and their
        // address computations per copied element — the gather half of
        // the two extra sweeps a relayout unit pays.
        let elems = (rl.rows * rl.cols) as u64;
        self.counts.loads += elems;
        self.counts.stores += elems;
        self.counts.addr += 2 * elems;
    }

    #[inline]
    fn relayout_scatter(&mut self, _x_base: usize, rl: wht_core::Relayout, _scratch: usize) {
        // The scatter half: the exact inverse copy, same operation bill.
        let elems = (rl.rows * rl.cols) as u64;
        self.counts.loads += elems;
        self.counts.stores += elems;
        self.counts.addr += 2 * elems;
    }
}

/// Execute the loop nest (dataless) and count every operation category.
pub fn measured_op_counts(plan: &Plan) -> OpCounts {
    let mut counter = InstructionCounter::new();
    traverse(plan, &mut counter);
    counter.counts()
}

/// Measured instruction count under `cost` — what PAPI would report on the
/// abstract machine.
pub fn measured_instruction_count(plan: &Plan, cost: &CostModel) -> u64 {
    cost.total(&measured_op_counts(plan))
}

/// Operation counts of replaying a *compiled* schedule — the same counter
/// driven by [`CompiledPlan::traverse`], so what is measured is exactly
/// the `Vec<Pass>` program [`CompiledPlan::apply`] executes and the two
/// structurally cannot drift. Leaf-work categories (arith, loads, stores,
/// addr, leaf calls) always equal the interpreter's; the loop-bookkeeping
/// categories are smaller — that difference *is* the compiled layer's win.
pub fn compiled_op_counts(compiled: &CompiledPlan) -> OpCounts {
    let mut counter = InstructionCounter::new();
    compiled.traverse(&mut counter);
    counter.counts()
}

/// Instruction count of replaying a compiled schedule under `cost`.
pub fn compiled_instruction_count(compiled: &CompiledPlan, cost: &CostModel) -> u64 {
    cost.total(&compiled_op_counts(compiled))
}

/// Operation counts of the **batched** replay — the same counter driven
/// by [`CompiledPlan::traverse_batch`], so what is measured is exactly
/// the program [`CompiledPlan::apply_batch`] executes for a `rows × 2^n`
/// batch with lane width `lanes` ([`wht_core::Scalar::LANES`] of the
/// element type being modeled). Engaged lane groups pay the two
/// transpose copies — charged through the relayout gather/scatter hooks,
/// one load, one store, and two address computations per copied element —
/// and run every scaled cross pass once per group; the sub-group
/// remainder, and the whole batch when the schedule carries no engaged
/// [`wht_core::BatchSchedule`], replay the ordinary per-row program. The
/// butterfly count is invariant either way (`rows ×` the single-transform
/// arith) — batching only moves loads, stores, and bookkeeping.
pub fn batch_op_counts(compiled: &CompiledPlan, rows: usize, lanes: usize) -> OpCounts {
    let mut counter = InstructionCounter::new();
    compiled.traverse_batch(rows, lanes, &mut counter);
    counter.counts()
}

/// Instruction count of the batched replay under `cost` — what PAPI
/// would report for one [`CompiledPlan::apply_batch`] call on the
/// abstract machine.
pub fn batch_instruction_count(
    compiled: &CompiledPlan,
    rows: usize,
    lanes: usize,
    cost: &CostModel,
) -> u64 {
    cost.total(&batch_op_counts(compiled, rows, lanes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wht_models::{instruction_count, op_counts};

    #[test]
    fn measurement_equals_model_for_canonicals() {
        let cost = CostModel::default();
        for n in 1..=14u32 {
            for plan in [
                Plan::iterative(n).unwrap(),
                Plan::right_recursive(n).unwrap(),
                Plan::left_recursive(n).unwrap(),
                Plan::balanced(n, 3).unwrap(),
                Plan::binary_iterative(n, 5).unwrap(),
            ] {
                assert_eq!(
                    measured_op_counts(&plan),
                    op_counts(&plan),
                    "op counts diverge for {plan}"
                );
                assert_eq!(
                    measured_instruction_count(&plan, &cost),
                    instruction_count(&plan, &cost)
                );
            }
        }
    }

    #[test]
    fn compiled_counts_same_leaf_work_less_overhead() {
        for n in [6u32, 10, 13] {
            for plan in [
                Plan::right_recursive(n).unwrap(),
                Plan::balanced(n, 3).unwrap(),
                Plan::binary_iterative(n, 4).unwrap(),
            ] {
                let interp = measured_op_counts(&plan);
                let compiled = compiled_op_counts(&CompiledPlan::compile(&plan));
                // Identical real work...
                assert_eq!(compiled.arith, interp.arith, "plan {plan}");
                assert_eq!(compiled.loads, interp.loads);
                assert_eq!(compiled.stores, interp.stores);
                assert_eq!(compiled.addr, interp.addr);
                assert_eq!(compiled.leaf_calls, interp.leaf_calls);
                // ...never more bookkeeping (strictly less once any split
                // nests below the root).
                assert!(compiled.node_invocations <= interp.node_invocations);
                assert!(compiled.j_iters <= interp.j_iters);
                assert!(compiled.k_iters <= interp.k_iters);
                if plan.depth() > 2 {
                    assert!(
                        compiled.node_invocations < interp.node_invocations,
                        "nested {plan} must save split invocations"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_counts_keep_leaf_work_and_cut_schedule_overhead() {
        use wht_core::FusionPolicy;
        let plan = Plan::right_recursive(14).unwrap();
        let compiled = CompiledPlan::compile(&plan);
        let fused = compiled.fuse(&FusionPolicy::new(1 << 10));
        assert!(fused.is_fused());
        let c = compiled_op_counts(&compiled);
        let f = compiled_op_counts(&fused);
        // Fusion regroups the schedule; it must not change any work
        // category — the loop bookkeeping sums tile-locally to the same
        // totals, and the leaf multiset is invariant.
        assert_eq!(f.arith, c.arith);
        assert_eq!(f.loads, c.loads);
        assert_eq!(f.stores, c.stores);
        assert_eq!(f.addr, c.addr);
        assert_eq!(f.leaf_calls, c.leaf_calls);
        assert_eq!(f.j_iters, c.j_iters);
        assert_eq!(f.k_iters, c.k_iters);
        assert_eq!(f.node_invocations, c.node_invocations);
        // Fewer scheduling units is the one structural difference.
        assert!(f.outer_iters < c.outer_iters);
    }

    #[test]
    fn relayout_counts_add_exactly_the_copy_work() {
        use wht_core::{FusionPolicy, RelayoutPolicy};
        let n = 14u32;
        let plan = Plan::iterative(n).unwrap();
        let fused = CompiledPlan::compile_fused(&plan, &FusionPolicy::new(1 << 6));
        let relaid = fused.relayout(&RelayoutPolicy::eager(1 << 9));
        assert!(relaid.has_relayout());
        let f = compiled_op_counts(&fused);
        let r = compiled_op_counts(&relaid);
        // The butterflies and leaf multiset are untouched; the gather and
        // scatter each add one load, one store, and two address
        // computations per element of the vector.
        let size = 1u64 << n;
        assert_eq!(r.arith, f.arith);
        assert_eq!(r.leaf_calls, f.leaf_calls);
        assert_eq!(r.loads, f.loads + 2 * size);
        assert_eq!(r.stores, f.stores + 2 * size);
        assert_eq!(r.addr, f.addr + 4 * size);
    }

    #[test]
    fn batch_counts_charge_the_transposes_and_save_bookkeeping() {
        use wht_core::BatchPolicy;
        let n = 10u32;
        let w = 8usize; // f64 lane width: the batch path's group size
        let plan = Plan::iterative(n).unwrap();
        let compiled = CompiledPlan::compile(&plan).with_batch(&BatchPolicy::new(1));
        assert!(compiled.is_batched());
        let single = compiled_op_counts(&compiled);

        // Below the lane width the batched replay is the per-row program
        // — identical bill, one shared schedule entry aside.
        let rows = 5usize;
        let few = batch_op_counts(&compiled, rows, w);
        let mut want = single.scale(rows as u64);
        want.node_invocations = 1;
        assert_eq!(few, want);

        // Engaged: 2 full lane groups + 3 remainder rows.
        let rows = 19usize;
        let b = batch_op_counts(&compiled, rows, w);
        let size = 1u64 << n;
        let groups = (rows / w) as u64;
        // The butterfly DAG is the batch invariant: same arith, same
        // codelet calls, same k-loop trips as `rows` lone transforms...
        assert_eq!(b.arith, single.arith * rows as u64);
        assert_eq!(b.leaf_calls, single.leaf_calls * rows as u64);
        assert_eq!(b.k_iters, single.k_iters * rows as u64);
        // ...each engaged group pays the gather and scatter copies on top
        // (1 load + 1 store + 2 addr per copied element, two copies of
        // the w·2^n group)...
        let copies = groups * 2 * (w as u64) * size;
        assert_eq!(b.loads, single.loads * rows as u64 + copies);
        assert_eq!(b.stores, single.stores * rows as u64 + copies);
        assert_eq!(b.addr, single.addr * rows as u64 + 2 * copies);
        // ...and each scaled cross pass runs once per group instead of
        // once per row — the j-loop saving the transposed domain buys.
        assert!(b.j_iters < single.j_iters * rows as u64);
    }

    #[test]
    fn counter_accumulates_across_traversals() {
        let plan = Plan::iterative(4).unwrap();
        let mut counter = InstructionCounter::new();
        traverse(&plan, &mut counter);
        let once = counter.counts();
        traverse(&plan, &mut counter);
        assert_eq!(counter.counts(), once.scale(2));
    }
}
