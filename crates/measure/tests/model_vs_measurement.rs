//! Cross-crate property tests: the paper's "computable from the high-level
//! description" property, checked against instrumented execution on random
//! plans from the shared `wht_core::testkit` generator.

use proptest::prelude::*;
use wht_core::testkit::random_plan;
use wht_measure::{direct_mapped_unit_misses, measured_op_counts};
use wht_models::{analytic_misses, instruction_count, op_counts, CostModel, ModelCache};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The instruction-count model equals the instrumented measurement
    /// EXACTLY for every plan (any n, any seed).
    #[test]
    fn model_equals_instrumented_execution(n in 1u32..=14, seed in any::<u64>()) {
        let plan = random_plan(n, seed);
        prop_assert_eq!(op_counts(&plan), measured_op_counts(&plan), "plan {}", plan);
        let cost = CostModel::default();
        prop_assert_eq!(
            instruction_count(&plan, &cost),
            wht_measure::measured_instruction_count(&plan, &cost)
        );
    }

    /// The analytic direct-mapped miss model tracks the exact trace
    /// simulation closely on random plans (cold-refill approximation; see
    /// wht-models::cache docs). In-cache it must be exact.
    #[test]
    fn analytic_misses_track_simulation(n in 1u32..=11, c in 4u32..=9, seed in any::<u64>()) {
        let plan = random_plan(n, seed);
        let sim = direct_mapped_unit_misses(&plan, c).unwrap();
        let model = analytic_misses(&plan, ModelCache { log2_capacity: c });
        if n <= c {
            prop_assert_eq!(sim, model, "in-cache must be exact for {}", plan);
            prop_assert_eq!(sim, 1u64 << n);
        } else {
            let rel = (sim as f64 - model as f64).abs() / sim as f64;
            prop_assert!(
                rel < 0.08,
                "plan {}: sim {} vs model {} (rel {:.4})",
                plan, sim, model, rel
            );
        }
    }

    /// Miss counts can never be fewer than compulsory (= N for unit lines)
    /// nor more than total accesses.
    #[test]
    fn simulated_misses_bounded(n in 1u32..=10, c in 3u32..=8, seed in any::<u64>()) {
        let plan = random_plan(n, seed);
        let sim = direct_mapped_unit_misses(&plan, c).unwrap();
        let accesses = 2 * (1u64 << n) * plan.leaf_count() as u64;
        prop_assert!(sim >= 1u64 << n);
        prop_assert!(sim <= accesses);
    }
}
