//! Differential harness: the memoized branch-and-bound search against the
//! plain DP baseline and the exhaustive oracle.
//!
//! Three independently implemented searches, one answer:
//! - `memo_search` ≡ `dp_search`: identical best **cost and plan** (the
//!   shared deterministic tie-break — cost, then earliest candidate in
//!   canonical generation order) for context-free models at n ≤ 12.
//! - both ≡ `exhaustive_search` on best **cost** where full enumeration
//!   is feasible: the exhaustive space contains nested shapes the
//!   bottom-up searches never build, so plan identity is not required —
//!   but for a context-free cost no nested shape can beat the DP optimum.
//! - memoization + pruning must actually pay: strictly fewer evaluations
//!   than dp at n ≥ 16, and an n = 30 search stays within a generous
//!   evaluation budget (the anti-exponential-blowup gate).

use wht_core::MAX_LEAF_K;
use wht_search::{
    dp_search, exhaustive_search, memo_search, CombinedModelCost, DpOptions, InstructionCost,
    MemoTable,
};

#[test]
fn memo_dp_and_exhaustive_agree_for_context_free_models() {
    let opts = DpOptions::unbounded_parts();
    let mut dp_cost = InstructionCost::default();
    let mut memo_cost = InstructionCost::default();
    let mut memo = MemoTable::new();
    for n in 1..=12u32 {
        let dp = dp_search(n, &opts, &mut dp_cost).unwrap();
        let mm = memo_search(n, &opts, &mut memo_cost, &mut memo).unwrap();
        assert_eq!(mm.cost, dp.best_cost(), "cost diverged at n={n}");
        assert_eq!(
            mm.best,
            *dp.best_plan(),
            "plan diverged at n={n} (tie-break mismatch)"
        );
        // Exhaustive enumeration of the *entire* (nested) plan space where
        // it fits a budget: no shape at all beats the context-free
        // optimum the bottom-up searches found.
        if n <= 6 {
            let ex = exhaustive_search(n, MAX_LEAF_K, 1_000_000, &mut InstructionCost::default())
                .unwrap();
            assert_eq!(ex.cost, mm.cost, "exhaustive found better at n={n}");
        }
    }
}

#[test]
fn memo_matches_dp_for_the_combined_model_too() {
    // The combined model adds the analytic-miss term (stride-monotone, so
    // the invocation-scaled bound still holds): same answers, bounded or
    // unbounded arity.
    for opts in [
        DpOptions::default(),
        DpOptions {
            max_parts: 2,
            ..DpOptions::default()
        },
    ] {
        let mut dp_cost = CombinedModelCost::paper_default();
        let mut memo_cost = CombinedModelCost::paper_default();
        let mut memo = MemoTable::new();
        for n in 1..=12u32 {
            let dp = dp_search(n, &opts, &mut dp_cost).unwrap();
            let mm = memo_search(n, &opts, &mut memo_cost, &mut memo).unwrap();
            assert_eq!(mm.cost, dp.best_cost(), "cost diverged at n={n}");
            assert_eq!(mm.best, *dp.best_plan(), "plan diverged at n={n}");
        }
    }
}

#[test]
fn memo_performs_strictly_fewer_evaluations_than_dp_past_n16() {
    for n in [16u32, 20, 24] {
        for opts in [DpOptions::default(), DpOptions::unbounded_parts()] {
            let mut dp_cost = InstructionCost::default();
            let dp = dp_search(n, &opts, &mut dp_cost).unwrap();
            let mut memo_cost = InstructionCost::default();
            let mut memo = MemoTable::new();
            let mm = memo_search(n, &opts, &mut memo_cost, &mut memo).unwrap();
            assert!(
                mm.evaluations < dp.evaluations(),
                "n={n}, {opts:?}: memo {} evals vs dp {}",
                mm.evaluations,
                dp.evaluations()
            );
            assert_eq!(mm.cost, dp.best_cost(), "pruning changed the answer");
            assert_eq!(mm.best, *dp.best_plan());
        }
    }
}

/// The anti-blowup gate (and the acceptance bar's evaluation half): an
/// n = 30 memoized search under the paper's combined model must stay at
/// least 10x under dp's evaluation count, and far inside a generous
/// absolute budget that would catch any accidental return to exponential
/// (or even quadratic-per-size) candidate evaluation.
#[test]
fn memo_n30_completes_under_a_generous_evaluation_budget() {
    let opts = DpOptions::default();
    let mut memo_cost = CombinedModelCost::paper_default();
    let mut memo = MemoTable::new();
    let mm = memo_search(30, &opts, &mut memo_cost, &mut memo).unwrap();
    assert_eq!(mm.n, 30);
    assert_eq!(mm.best.n(), 30);
    // dp evaluates every candidate: 30 leaves/splits aside, about m^2/2
    // compositions per size m — ~4.5k at n = 30. Ten percent of that is
    // the acceptance ceiling; 450 is *generous* for 30 groups.
    let mut dp_cost = CombinedModelCost::paper_default();
    let dp = dp_search(30, &opts, &mut dp_cost).unwrap();
    assert!(
        mm.evaluations * 10 <= dp.evaluations(),
        "memo {} evals vs dp {} — lost the 10x bar",
        mm.evaluations,
        dp.evaluations()
    );
    assert_eq!(mm.cost, dp.best_cost(), "best cost diverged at n=30");
    assert_eq!(mm.best, *dp.best_plan(), "best plan diverged at n=30");
    // A warm repeat is free.
    let again = memo_search(30, &opts, &mut memo_cost, &mut memo).unwrap();
    assert_eq!(again.evaluations, 0);
    assert_eq!(again.reused_groups, 30);
}
