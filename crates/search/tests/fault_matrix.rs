//! Crash-consistency matrix for the sharded wisdom store.
//!
//! The store's contract (`wht_search::store` docs): committed shards are
//! always intact and readable, uncommitted writes never surface, damaged
//! shards are quarantined with the right diagnostic, and the planner
//! degrades to cold search — never a panic, never poisoned tuning. This
//! harness replays hundreds of injected fault schedules (ENOSPC, short
//! write, fsync/rename failure, kill-at-any-byte truncation) through the
//! `failpoints` layer and asserts the invariant after every one.
//!
//! The first test is the CI gate (mirroring `exec_gate.rs`): the `faults`
//! CI leg runs with `WHT_FAILPOINTS` armed, and the gate asserts the
//! armed environment actually injects — a disarmed harness fails loudly
//! instead of silently passing a matrix that exercised nothing.

use std::fs;
use std::path::PathBuf;
use wht_core::{max_abs_diff, naive_wht, Plan, WhtError};
use wht_search::failpoints::{self, Fault};
use wht_search::store::{
    atomic_write, decode_shard, encode_shard, ShardedStore, StoreDiagnostic, SHARD_HEADER_LEN,
};
use wht_search::{InstructionCost, Planner, Wisdom};

/// Fresh per-test scratch directory (parallel-test and rerun safe).
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wht_fault_matrix_{}_{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn rm(dir: &PathBuf) {
    let _ = fs::remove_dir_all(dir);
}

/// CI gate: when the harness is supposed to be armed (`WHT_FAILPOINTS`
/// set), the environment spec must have parsed non-empty AND an armed
/// `atomic::*` site must actually inject end-to-end. A typo'd or dropped
/// env var fails here, loudly, instead of green-lighting a matrix that
/// exercised nothing. (Like `exec_gate.rs`, the raw environment is the
/// source of truth the derived state is checked against.)
#[test]
fn gate_env_armed_matches_environment() {
    let raw = std::env::var("WHT_FAILPOINTS").unwrap_or_default();
    let expect_armed = !failpoints::parse_spec(&raw)
        .expect("spec must parse")
        .is_empty();
    assert_eq!(
        failpoints::env_armed(),
        expect_armed,
        "failpoints arming must match the raw WHT_FAILPOINTS environment {raw:?}"
    );
    let dir = temp_dir("gate");
    let probe = dir.join("probe.bin");
    let armed_atomic_site = failpoints::env_spec()
        .iter()
        .any(|(site, _)| site.starts_with("atomic::"));
    // Outside any scope, env faults apply: an armed atomic site must make
    // the probe write fail; a disarmed harness must let it succeed.
    let result = atomic_write(&probe, b"gate probe");
    if armed_atomic_site {
        assert!(
            result.is_err(),
            "WHT_FAILPOINTS={raw:?} armed an atomic site but atomic_write succeeded — \
             the injection layer is not wired through this build"
        );
    } else {
        result.expect("disarmed atomic_write must succeed");
        assert_eq!(fs::read(&probe).unwrap(), b"gate probe");
    }
    rm(&dir);
}

/// One committed generation of wisdom: entry A for (3, backend) at stamp
/// 1 with no evidence.
fn wisdom_a() -> Wisdom {
    let mut w = Wisdom::new();
    let plan: Plan = "small[3]".parse().unwrap();
    w.insert(3, "matrix-backend", plan).unwrap();
    w
}

/// The would-be second generation: a different plan for the same key at
/// stamp 2, carrying measured evidence.
fn wisdom_b() -> Wisdom {
    let mut w = Wisdom::new();
    let plan: Plan = "split[small[1],small[2]]".parse().unwrap();
    w.insert(3, "matrix-backend", plan).unwrap();
    w.record_measurement(3, "matrix-backend", 777).unwrap();
    w
}

fn plan_a() -> Plan {
    "small[3]".parse().unwrap()
}

fn plan_b() -> Plan {
    "split[small[1],small[2]]".parse().unwrap()
}

/// The invariant checked after every schedule: the store must load
/// cleanly (no diagnostics — committed shards intact, uncommitted temp
/// files invisible) and the surviving entry must be exactly generation A
/// or exactly generation B, never a mixture, never absent.
fn assert_invariant(store: &ShardedStore, schedule: &str, must_be_a: bool) {
    let loaded = store.load();
    assert!(
        loaded.diagnostics.is_empty(),
        "[{schedule}] a fault schedule must never corrupt the committed store: {:?}",
        loaded.diagnostics
    );
    assert_eq!(loaded.quarantined, 0, "[{schedule}]");
    let got = loaded
        .wisdom
        .get(3, "matrix-backend")
        .unwrap_or_else(|| panic!("[{schedule}] committed entry lost"))
        .clone();
    let evidence = loaded.wisdom.measured_ns(3, "matrix-backend");
    if got == plan_a() {
        assert_eq!(evidence, None, "[{schedule}] A carries no evidence");
    } else if got == plan_b() {
        assert_eq!(evidence, Some(777), "[{schedule}] B carries its evidence");
    } else {
        panic!("[{schedule}] surviving entry is neither generation: {got}");
    }
    if must_be_a {
        assert_eq!(
            got,
            plan_a(),
            "[{schedule}] a fault before the rename commit point must leave generation A"
        );
    }
}

/// The crash-consistency matrix: ≥200 injected fault schedules against a
/// store holding one committed generation, each attempting to commit the
/// next generation under a different failure.
#[test]
fn crash_consistency_matrix_holds_across_all_schedules() {
    // Hermetic: the CI leg's env-armed faults must not perturb the
    // matrix's own deterministic schedules.
    let _isolate = failpoints::scope();
    let dir = temp_dir("matrix");
    let store = ShardedStore::open(&dir).unwrap().with_host("matrix-host");

    // Measure the exact on-disk size of a generation-B shard so the
    // kill-at-byte sweep covers every byte boundary of the real file.
    store.save_with_stamp(&wisdom_b(), 2).unwrap();
    let shard_path = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "shard"))
        .expect("one shard written");
    let shard_len = fs::read(&shard_path).unwrap().len();
    assert!(shard_len > SHARD_HEADER_LEN);

    let mut schedules = 0usize;

    // Reset to the committed baseline: generation A at stamp 1.
    let reset = |store: &ShardedStore| {
        let _quiet = failpoints::scope();
        // Remove every shard and stray temp, then commit A cleanly.
        for entry in fs::read_dir(store.root()).unwrap().filter_map(|e| e.ok()) {
            if entry.path().is_file() {
                let _ = fs::remove_file(entry.path());
            }
        }
        store.save_with_stamp(&wisdom_a(), 1).unwrap();
    };

    // Part 1: Err and Kill at every named site of the atomic-write path.
    let sites = [
        "atomic::create",
        "atomic::write",
        "atomic::fsync",
        "atomic::rename",
        "atomic::dir_fsync",
    ];
    for site in sites {
        for fault in [Fault::Err, Fault::Kill] {
            reset(&store);
            let schedule = format!("{site}={fault:?}");
            let result = {
                let _armed = failpoints::arm(site, fault);
                store.save_with_stamp(&wisdom_b(), 2)
            };
            assert!(
                matches!(result, Err(WhtError::Io { .. })),
                "[{schedule}] injected fault must surface as WhtError::Io, got {result:?}"
            );
            // dir_fsync faults fire after the rename committed; every
            // earlier site must leave generation A untouched.
            let committed = site == "atomic::dir_fsync";
            assert_invariant(&store, &schedule, !committed);
            schedules += 1;
        }
    }

    // Part 2: short writes and kill-at-byte truncation at every byte
    // boundary of the real shard (step 1 over the whole file, plus a
    // couple of past-the-end points exercising the clamp).
    for b in (0..=shard_len + 2).step_by(1) {
        for kill in [false, true] {
            reset(&store);
            let fault = if kill {
                Fault::KillAtByte(b)
            } else {
                Fault::ShortWrite(b)
            };
            let schedule = format!("atomic::write={fault:?}");
            let result = {
                let _armed = failpoints::arm("atomic::write", fault);
                store.save_with_stamp(&wisdom_b(), 2)
            };
            assert!(
                matches!(result, Err(WhtError::Io { .. })),
                "[{schedule}] injected fault must surface as WhtError::Io"
            );
            if kill {
                // A killed write leaves its truncated temp file behind —
                // exactly what a dead process leaves — and the loader
                // must still never surface it.
                let temps = fs::read_dir(&dir)
                    .unwrap()
                    .filter_map(|e| e.ok())
                    .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
                    .count();
                assert!(temps > 0, "[{schedule}] kill must leave the temp file");
            }
            assert_invariant(&store, &schedule, true);
            schedules += 1;
        }
    }

    assert!(
        schedules >= 200,
        "matrix must replay at least 200 schedules, got {schedules}"
    );
    rm(&dir);
}

/// Damage committed shards in every classifiable way and assert load
/// quarantines each with the right diagnostic while intact shards in the
/// same directory keep loading.
#[test]
fn corrupt_shards_are_quarantined_with_typed_diagnostics() {
    let _isolate = failpoints::scope();
    let dir = temp_dir("quarantine");
    let store = ShardedStore::open(&dir).unwrap().with_host("qhost");

    // Two committed shards: one stays good, one gets damaged per case.
    let mut good = Wisdom::new();
    good.insert(4, "qb", "split[small[2],small[2]]".parse().unwrap())
        .unwrap();
    let mut victim = Wisdom::new();
    victim.insert(3, "qb", "small[3]".parse().unwrap()).unwrap();

    type Damage = Box<dyn Fn(&mut Vec<u8>)>;
    let cases: Vec<(&str, Damage, &str)> = vec![
        (
            "magic-flip",
            Box::new(|b: &mut Vec<u8>| b[0] ^= 0xff),
            "corrupt",
        ),
        (
            "truncate-header",
            Box::new(|b: &mut Vec<u8>| b.truncate(SHARD_HEADER_LEN / 2)),
            "truncated",
        ),
        (
            "truncate-payload",
            Box::new(|b: &mut Vec<u8>| {
                let l = b.len();
                b.truncate(l - 3);
            }),
            "truncated",
        ),
        (
            "payload-bitflip",
            Box::new(|b: &mut Vec<u8>| {
                let l = b.len();
                b[l - 2] ^= 0x20;
            }),
            "checksum-mismatch",
        ),
        (
            "future-container-version",
            Box::new(|b: &mut Vec<u8>| b[8..12].copy_from_slice(&77u32.to_le_bytes())),
            "version-unknown",
        ),
    ];

    for (tag, damage, want_kind) in cases {
        // Fresh directory state per case.
        for entry in fs::read_dir(&dir).unwrap().filter_map(|e| e.ok()) {
            if entry.path().is_dir() {
                let _ = fs::remove_dir_all(entry.path());
            } else {
                let _ = fs::remove_file(entry.path());
            }
        }
        store.save_with_stamp(&good, 1).unwrap();
        store.save_with_stamp(&victim, 1).unwrap();
        let victim_path = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| {
                p.file_name()
                    .is_some_and(|f| f.to_string_lossy().starts_with("n03"))
            })
            .expect("victim shard on disk");
        let mut bytes = fs::read(&victim_path).unwrap();
        damage(&mut bytes);
        fs::write(&victim_path, &bytes).unwrap();

        let loaded = store.load();
        assert_eq!(loaded.shards_loaded, 1, "[{tag}] the good shard loads");
        assert!(
            loaded.wisdom.get(4, "qb").is_some(),
            "[{tag}] intact entries survive a bad neighbor"
        );
        assert!(
            loaded.wisdom.get(3, "qb").is_none(),
            "[{tag}] a damaged shard must never be partially applied"
        );
        assert_eq!(loaded.diagnostics.len(), 1, "[{tag}]");
        assert_eq!(
            loaded.diagnostics[0].kind(),
            want_kind,
            "[{tag}] got {}",
            loaded.diagnostics[0]
        );
        assert_eq!(loaded.quarantined, 1, "[{tag}]");
        assert!(
            !victim_path.exists(),
            "[{tag}] the damaged shard must move into quarantine/"
        );
        assert!(dir.join("quarantine").is_dir(), "[{tag}]");
        // A second load is clean: quarantine is not a recurring error.
        let again = store.load();
        assert!(
            again.diagnostics.is_empty(),
            "[{tag}] {:?}",
            again.diagnostics
        );
        assert_eq!(again.shards_loaded, 1, "[{tag}]");
    }
    rm(&dir);
}

/// A directory entry named `*.shard` that cannot be read as a file is an
/// IoFailed diagnostic, not a panic.
#[test]
fn unreadable_shard_entry_is_io_failed() {
    let _isolate = failpoints::scope();
    let dir = temp_dir("iofail");
    let store = ShardedStore::open(&dir).unwrap();
    fs::create_dir_all(dir.join("imposter.shard")).unwrap();
    let loaded = store.load();
    assert_eq!(loaded.diagnostics.len(), 1);
    assert_eq!(loaded.diagnostics[0].kind(), "io-failed");
    rm(&dir);
}

/// The degradation contract end-to-end: a store whose shards are 100%
/// corrupt still yields a working planner that serves bit-identical
/// transforms via cold search and reports the damage through explain.
#[test]
fn planner_degrades_to_cold_search_on_total_store_loss() {
    let _isolate = failpoints::scope();
    let dir = temp_dir("degrade");
    let store = ShardedStore::open(&dir).unwrap().with_host("dhost");

    // Commit real wisdom, then corrupt every shard on disk.
    let mut seeder = Planner::new(InstructionCost::default());
    seeder.plan(6).unwrap();
    seeder.save_store(&store).unwrap();
    let mut shard_count = 0usize;
    for entry in fs::read_dir(&dir).unwrap().filter_map(|e| e.ok()) {
        if entry.path().extension().is_some_and(|x| x == "shard") {
            let mut bytes = fs::read(entry.path()).unwrap();
            for b in bytes.iter_mut() {
                *b ^= 0xa5;
            }
            fs::write(entry.path(), &bytes).unwrap();
            shard_count += 1;
        }
    }
    assert!(shard_count >= 6, "seeded one shard per size");

    // with_store must not panic, must not error, must quarantine all.
    let mut planner = Planner::new(InstructionCost::default()).with_store(&store);
    assert_eq!(planner.store_diagnostics().len(), shard_count);
    assert!(planner.wisdom().is_empty(), "no poisoned tuning adopted");

    // ...and transforms still serve, bit-identical to the reference.
    let input: Vec<f64> = (0..64).map(|j| ((j * 13 + 3) % 17) as f64 - 8.0).collect();
    let want = naive_wht(&input);
    let mut x = input.clone();
    planner.transform(&mut x).unwrap();
    assert!(max_abs_diff(&x, &want) < 1e-12);
    assert!(
        planner.evaluations() > 0,
        "total store loss degrades to a cold search, not a silent no-op"
    );
    let line = planner.explain(6).expect("searched after degradation");
    assert!(
        line.contains("store:") && line.contains("quarantined"),
        "explain must surface the store damage: {line}"
    );
    rm(&dir);
}

/// Merge semantics across a simulated fleet: evidence beats recency,
/// recency breaks no-evidence ties, and two hosts pool without
/// clobbering each other's shard files.
#[test]
fn fleet_merge_keeps_best_evidence_per_key() {
    let _isolate = failpoints::scope();
    let dir = temp_dir("fleet");
    let store = ShardedStore::open(&dir).unwrap();

    // Host 1: newest, no evidence. Host 2: older, measured.
    let mut newest = Wisdom::new();
    newest.insert(3, "fb", plan_a()).unwrap();
    ShardedStore::open(&dir)
        .unwrap()
        .with_host("fleet-1")
        .save_with_stamp(&newest, 500)
        .unwrap();
    let mut measured = Wisdom::new();
    measured.insert(3, "fb", plan_b()).unwrap();
    measured.record_measurement(3, "fb", 1200).unwrap();
    ShardedStore::open(&dir)
        .unwrap()
        .with_host("fleet-2")
        .save_with_stamp(&measured, 100)
        .unwrap();

    let loaded = store.load();
    assert_eq!(loaded.shards_loaded, 2, "one shard file per host");
    assert_eq!(
        loaded.wisdom.get(3, "fb"),
        Some(&plan_b()),
        "measured evidence beats a newer unmeasured entry"
    );

    // A faster measurement from a third host takes over.
    let mut faster = Wisdom::new();
    faster.insert(3, "fb", plan_a()).unwrap();
    faster.record_measurement(3, "fb", 800).unwrap();
    ShardedStore::open(&dir)
        .unwrap()
        .with_host("fleet-3")
        .save_with_stamp(&faster, 50)
        .unwrap();
    let loaded = store.load();
    assert_eq!(loaded.wisdom.get(3, "fb"), Some(&plan_a()));
    assert_eq!(loaded.wisdom.measured_ns(3, "fb"), Some(800));
    rm(&dir);
}

/// Satellite 4 end-to-end: winner provenance persists through the store,
/// so a restarted process explains its wisdom-served plans without
/// re-searching.
#[test]
fn explain_survives_a_process_restart_through_the_store() {
    let _isolate = failpoints::scope();
    let dir = temp_dir("provenance");
    let store = ShardedStore::open(&dir).unwrap().with_host("phost");

    let mut original = Planner::new(InstructionCost::default());
    original.plan(8).unwrap();
    let live_line = original.explain(8).expect("searched live");
    original.save_store(&store).unwrap();

    // "Restart": a fresh planner, warmed only from disk.
    let mut restarted = Planner::new(InstructionCost::default()).with_store(&store);
    restarted.plan(8).unwrap();
    assert_eq!(restarted.evaluations(), 0, "served warm from the store");
    let replayed = restarted.explain(8).expect("provenance survived restart");
    assert!(replayed.contains("[replayed from wisdom]"), "{replayed}");
    // Same winning account as the live search (modulo the replay marker
    // and any verifier/store suffixes).
    let live_head = live_line.split(';').next().unwrap();
    assert!(
        replayed.starts_with(live_head),
        "replayed account must match the live one:\n  live: {live_line}\n  replay: {replayed}"
    );
    rm(&dir);
}

/// Satellite 1 regression: a corrupt legacy single-blob wisdom file
/// degrades (quarantine + default) instead of hard-failing, and a planner
/// built over it still serves.
#[test]
fn legacy_blob_load_or_default_quarantines_and_degrades() {
    let _isolate = failpoints::scope();
    let dir = temp_dir("legacy");
    let path = dir.join("wisdom.json");

    // Missing file: clean cold start, no diagnostic.
    let (w, diags) = Wisdom::load_or_default(&path);
    assert!(w.is_empty() && diags.is_empty());

    // Corrupt blob: default + Corrupt diagnostic + quarantined file.
    fs::write(&path, "{\"version\":2,\"entries\":[{\"n\":4!!!garbage").unwrap();
    let (w, diags) = Wisdom::load_or_default(&path);
    assert!(w.is_empty());
    assert_eq!(diags.len(), 1);
    assert!(
        !path.exists(),
        "the damaged blob must be quarantined so the next save starts clean"
    );
    assert!(dir.join("quarantine").is_dir());

    // And the planner builder route serves transforms regardless.
    fs::write(&path, "truncated {\"version\":").unwrap();
    let mut planner = Planner::new(InstructionCost::default()).with_wisdom_file(&path);
    assert_eq!(planner.store_diagnostics().len(), 1);
    let mut x: Vec<f64> = (0..32).map(|j| (j % 5) as f64).collect();
    let want = naive_wht(&x);
    planner.transform(&mut x).unwrap();
    assert!(max_abs_diff(&x, &want) < 1e-12);
    rm(&dir);
}

/// Wisdom saved by the legacy path is now atomically committed too: an
/// injected rename failure leaves the previous blob intact.
#[test]
fn legacy_blob_save_is_atomic() {
    let _isolate = failpoints::scope();
    let dir = temp_dir("legacy_atomic");
    let path = dir.join("wisdom.json");
    let mut w = Wisdom::new();
    w.insert(3, "lb", plan_a()).unwrap();
    w.save(&path).unwrap();
    let committed = fs::read(&path).unwrap();

    let mut w2 = Wisdom::new();
    w2.insert(3, "lb", plan_b()).unwrap();
    let result = {
        let _armed = failpoints::arm("atomic::rename", Fault::Err);
        w2.save(&path)
    };
    assert!(matches!(result, Err(WhtError::Io { .. })));
    assert_eq!(
        fs::read(&path).unwrap(),
        committed,
        "a failed save must leave the committed blob byte-identical"
    );
    rm(&dir);
}

/// Shard container decode classifies damage without touching a
/// filesystem (pure-function matrix rider covering the clamp edges).
#[test]
fn shard_codec_classification_is_exact() {
    let payload = br#"{"version":6,"entries":[]}"#;
    let bytes = encode_shard(9, payload);
    let (stamp, back) = decode_shard("x", &bytes).unwrap();
    assert_eq!((stamp, back), (9, payload.as_slice()));
    for cut in 0..bytes.len() {
        let diag = decode_shard("x", &bytes[..cut]).unwrap_err();
        assert!(
            matches!(
                diag,
                StoreDiagnostic::Truncated { .. } | StoreDiagnostic::Corrupt { .. }
            ),
            "cut at {cut}: {diag}"
        );
    }
}
