//! Corruption coverage for the full wisdom version corpus (satellite 3):
//! every historical blob format (v1–v6, plus current v7) in truncated,
//! bit-flipped, and future-version form must be rejected with the right
//! `StoreDiagnostic` through `Wisdom::load_or_default`, and a damaged
//! blob must never be partially applied.

use std::fs;
use std::path::PathBuf;
use wht_search::{failpoints, StoreDiagnostic, Wisdom};

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("wht_wisdom_versions_{}_{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// One handcrafted, valid blob per historical format.
fn corpus() -> Vec<(&'static str, String)> {
    vec![
        (
            "v1-flat",
            "{\"version\":1,\"entries\":[{\"n\":4,\"backend\":\"x\",\
             \"plan\":\"split[small[2],small[2]]\",\"fuse_budget\":512,\"simd\":true}]}"
                .to_string(),
        ),
        (
            "v2-flat-relayout",
            "{\"version\":2,\"entries\":[{\"n\":4,\"backend\":\"x\",\
             \"plan\":\"split[small[2],small[2]]\",\"fuse_budget\":64,\"simd\":true,\
             \"relayout\":512}]}"
                .to_string(),
        ),
        (
            "v3-nested-tuning",
            "{\"version\":3,\"entries\":[{\"n\":4,\"backend\":\"x\",\
             \"plan\":\"split[small[2],small[2]]\",\"tuning\":{\"fuse_budget\":4096,\
             \"simd\":true,\"relayout\":0,\"recodelet\":true}}]}"
                .to_string(),
        ),
        (
            "v4-batch",
            "{\"version\":4,\"entries\":[{\"n\":4,\"backend\":\"x\",\
             \"plan\":\"split[small[2],small[2]]\",\"tuning\":{\"fuse_budget\":4096,\
             \"simd\":true,\"relayout\":0,\"recodelet\":true,\"batch\":16}}]}"
                .to_string(),
        ),
        (
            "v5-objective",
            "{\"version\":5,\"entries\":[{\"n\":4,\"backend\":\"x\",\
             \"plan\":\"split[small[2],small[2]]\",\"tuning\":{\"fuse_budget\":4096,\
             \"simd\":true,\"relayout\":0,\"recodelet\":true,\"batch\":0,\
             \"objective\":\"Latency\"}}]}"
                .to_string(),
        ),
        (
            "v6-provenance",
            "{\"version\":6,\"entries\":[{\"n\":4,\"backend\":\"x\",\
             \"plan\":\"split[small[2],small[2]]\",\"tuning\":{\"fuse_budget\":4096,\
             \"simd\":true},\"provenance\":{\"composition\":[2,2],\"candidates\":8,\
             \"evaluated\":5,\"pruned\":3,\"cost\":42.5},\"measured_ns\":910}]}"
                .to_string(),
        ),
        (
            "v7-stream",
            "{\"version\":7,\"entries\":[{\"n\":4,\"backend\":\"x\",\
             \"plan\":\"split[small[2],small[2]]\",\"tuning\":{\"fuse_budget\":4096,\
             \"simd\":true,\"stream\":true},\"measured_ns\":880}]}"
                .to_string(),
        ),
    ]
}

#[test]
fn every_corpus_blob_loads_clean_as_a_control() {
    for (tag, blob) in corpus() {
        let w = Wisdom::from_json(&blob).unwrap_or_else(|e| panic!("[{tag}] control: {e}"));
        assert!(w.get(4, "x").is_some(), "[{tag}]");
    }
    // The v6 blob restores its extras.
    let (_, v6) = corpus()
        .into_iter()
        .find(|(tag, _)| *tag == "v6-provenance")
        .unwrap();
    let w = Wisdom::from_json(&v6).unwrap();
    assert_eq!(w.measured_ns(4, "x"), Some(910));
    let p = w.provenance(4, "x").expect("provenance restored");
    assert_eq!(p.composition.as_deref(), Some(&[2u32, 2][..]));
    assert_eq!((p.candidates, p.evaluated, p.pruned), (8, 5, 3));
    // And the v7 blob restores its stream choice.
    let (_, v7) = corpus()
        .into_iter()
        .find(|(tag, _)| *tag == "v7-stream")
        .unwrap();
    let w = Wisdom::from_json(&v7).unwrap();
    assert_eq!(w.tuning(4, "x").unwrap().stream, Some(true));
    assert_eq!(w.measured_ns(4, "x"), Some(880));
}

#[test]
fn truncated_blobs_of_every_version_classify_as_truncated() {
    let _isolate = failpoints::scope();
    let dir = temp_dir("trunc");
    for (tag, blob) in corpus() {
        let path = dir.join(format!("{tag}.json"));
        fs::write(&path, &blob[..blob.len() / 2]).unwrap();
        let (w, diags) = Wisdom::load_or_default(&path);
        assert!(w.is_empty(), "[{tag}] nothing partially applied");
        assert_eq!(diags.len(), 1, "[{tag}]");
        assert!(
            matches!(diags[0], StoreDiagnostic::Truncated { .. }),
            "[{tag}] got {}",
            diags[0]
        );
        assert!(!path.exists(), "[{tag}] damaged blob quarantined");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bitflipped_blobs_of_every_version_classify_as_corrupt() {
    let _isolate = failpoints::scope();
    let dir = temp_dir("flip");
    for (tag, blob) in corpus() {
        // Flip a structural character: the first '{' of the entries
        // array becomes garbage, breaking JSON without shortening it.
        let flipped = blob.replacen("[{", "[?", 1);
        let path = dir.join(format!("{tag}.json"));
        fs::write(&path, &flipped).unwrap();
        let (w, diags) = Wisdom::load_or_default(&path);
        assert!(w.is_empty(), "[{tag}] nothing partially applied");
        assert_eq!(diags.len(), 1, "[{tag}]");
        assert!(
            matches!(diags[0], StoreDiagnostic::Corrupt { .. }),
            "[{tag}] got {}",
            diags[0]
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn future_versions_classify_as_version_unknown() {
    let _isolate = failpoints::scope();
    let dir = temp_dir("future");
    for (tag, blob) in corpus() {
        let future = blob.replacen(
            &format!("\"version\":{}", &blob[11..12]),
            "\"version\":99",
            1,
        );
        assert!(future.contains("\"version\":99"), "[{tag}] rewrite applied");
        let path = dir.join(format!("{tag}.json"));
        fs::write(&path, &future).unwrap();
        let (w, diags) = Wisdom::load_or_default(&path);
        assert!(w.is_empty(), "[{tag}]");
        assert_eq!(diags.len(), 1, "[{tag}]");
        match &diags[0] {
            StoreDiagnostic::VersionUnknown { version, .. } => {
                assert_eq!(*version, 99, "[{tag}]")
            }
            other => panic!("[{tag}] expected VersionUnknown, got {other}"),
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_blob_with_one_bad_entry_is_never_partially_applied() {
    // Two entries, the second carrying an invalid plan: from_json must
    // fail as a whole (no partial application), and load_or_default must
    // degrade to empty.
    let _isolate = failpoints::scope();
    let blob = "{\"version\":1,\"entries\":[\
                 {\"n\":4,\"backend\":\"x\",\"plan\":\"split[small[2],small[2]]\"},\
                 {\"n\":3,\"backend\":\"x\",\"plan\":\"small[\"}]}";
    assert!(Wisdom::from_json(blob).is_err());
    let dir = temp_dir("partial");
    let path = dir.join("two-entry.json");
    fs::write(&path, blob).unwrap();
    let (w, diags) = Wisdom::load_or_default(&path);
    assert!(
        w.get(4, "x").is_none(),
        "the good first entry must not survive a bad blob"
    );
    assert!(w.is_empty());
    assert_eq!(diags.len(), 1);
    let _ = fs::remove_dir_all(&dir);
}
