//! Property tests for the search strategies.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use wht_core::testkit::random_plan;
use wht_search::{
    dp_search, local_search, memo_search, mutate, pruned_search, random_search, split_compositions,
    DpOptions, FusedTrafficCost, InstructionCost, LocalSearchOptions, MemoTable, PlanCost,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mutation preserves size and validity from any start (starts come
    /// from the shared `wht_core::testkit` generator).
    #[test]
    fn mutation_is_closed_over_the_space(n in 1u32..=18, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = random_plan(n, seed);
        for _ in 0..30 {
            plan = mutate(&plan, &mut rng);
            prop_assert_eq!(plan.n(), n);
            prop_assert!(plan.validate().is_ok());
        }
    }

    /// DP's best-cost table is monotone in max_parts (more compositions can
    /// only help) and never worse than the canonical plans.
    #[test]
    fn dp_improves_with_arity(n in 2u32..=10) {
        let mut cost = InstructionCost::default();
        let p2 = dp_search(n, &DpOptions { max_parts: 2, ..DpOptions::default() }, &mut cost).unwrap();
        let p3 = dp_search(n, &DpOptions { max_parts: 3, ..DpOptions::default() }, &mut cost).unwrap();
        prop_assert!(p3.best_cost() <= p2.best_cost());
        let canon = cost.cost(&wht_core::Plan::iterative(n).unwrap()).unwrap();
        prop_assert!(p2.best_cost() <= canon);
    }

    /// Pruned search never measures more than the keep fraction and its
    /// result is at least as good as the model's own ranking guarantees.
    #[test]
    fn pruned_search_budget_respected(n in 4u32..=12, seed in any::<u64>(), keep_pct in 5u32..=50) {
        let keep = f64::from(keep_pct) / 100.0;
        let samples = 60usize;
        let mut model = InstructionCost::default();
        let mut expensive = InstructionCost::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let res = pruned_search(n, samples, keep, &mut model, &mut expensive, &mut rng).unwrap();
        prop_assert!(res.measured <= ((samples as f64) * keep).ceil() as usize);
        prop_assert!(res.measured >= 1);
        // With model == expensive backend, pruning is lossless: the pruned
        // best equals the best of the whole sample.
        let mut rng2 = StdRng::seed_from_u64(seed);
        let full = random_search(n, samples, &mut InstructionCost::default(), &mut rng2).unwrap();
        prop_assert_eq!(res.best.cost, full.cost);
    }

    /// The fusion-aware traffic backend plugs straight into the DP
    /// autotuner and never loses to a canonical plan it could have picked.
    #[test]
    fn dp_with_fused_traffic_cost(n in 2u32..=12) {
        let mut cost = FusedTrafficCost::default();
        let dp = dp_search(n, &DpOptions::default(), &mut cost).unwrap();
        prop_assert_eq!(dp.best_plan().n(), n);
        prop_assert!(dp.best_plan().validate().is_ok());
        let canon = cost.cost(&wht_core::Plan::iterative(n).unwrap()).unwrap();
        prop_assert!(dp.best_cost() <= canon);
    }

    /// Local search output is valid and no worse than its random starts
    /// would be on average (sanity: it returns a real plan of the size).
    #[test]
    fn local_search_output_valid(n in 2u32..=12, seed in any::<u64>()) {
        let mut cost = InstructionCost::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let opts = LocalSearchOptions { restarts: 2, patience: 40 };
        let found = local_search(n, &opts, &mut cost, &mut rng).unwrap();
        prop_assert_eq!(found.plan.n(), n);
        prop_assert!(found.plan.validate().is_ok());
        prop_assert!(found.cost > 0.0);
    }

    /// The shared composition generator is exactly the multi-part
    /// compositions: unbounded, it emits every one of the `2^(m-1) - 1`
    /// compositions of `m` into >= 2 ordered parts (unique, each summing
    /// to `m`), cross-checked against an independent cut-mask
    /// enumeration; `max_parts` bounds arity *exactly* — it is the
    /// unbounded set filtered by length, nothing dropped, nothing added.
    /// Both searches build their candidate spaces from this generator, so
    /// its exactness is what makes them exact.
    #[test]
    fn split_compositions_are_exactly_the_multipart_compositions(m in 2u32..=12, max_parts in 2usize..=6) {
        let unbounded = split_compositions(m, usize::MAX);
        prop_assert_eq!(unbounded.len(), (1usize << (m - 1)) - 1);
        let as_set: HashSet<Vec<u32>> = unbounded.iter().cloned().collect();
        prop_assert_eq!(as_set.len(), unbounded.len(), "duplicates emitted");
        for comp in &unbounded {
            prop_assert!(comp.len() >= 2);
            prop_assert_eq!(comp.iter().sum::<u32>(), m);
            prop_assert!(comp.iter().all(|&p| p >= 1));
        }
        // Independent oracle: each nonzero proper subset of the m-1 cut
        // positions yields one multi-part composition.
        let mut oracle = HashSet::new();
        for mask in 1u32..(1 << (m - 1)) {
            let mut comp = Vec::new();
            let mut last = 0u32;
            for pos in 1..m {
                if mask & (1 << (pos - 1)) != 0 {
                    comp.push(pos - last);
                    last = pos;
                }
            }
            comp.push(m - last);
            oracle.insert(comp);
        }
        prop_assert_eq!(as_set, oracle);
        // Bounded arity: exactly the length-filtered unbounded set, in
        // the same relative (canonical) order.
        let bounded = split_compositions(m, max_parts);
        let filtered: Vec<Vec<u32>> = unbounded
            .iter()
            .filter(|c| c.len() <= max_parts)
            .cloned()
            .collect();
        prop_assert_eq!(bounded, filtered);
    }

    /// Memoized branch-and-bound search is answer-identical to plain DP —
    /// best cost *and* best plan, under the shared deterministic
    /// tie-break — for the context-free instruction model, across arity
    /// bounds and with the memo reused across every size in the run.
    #[test]
    fn memo_search_matches_dp_search(n in 1u32..=12, max_parts in 2usize..=4) {
        let opts = DpOptions { max_parts, ..DpOptions::default() };
        let mut dp_cost = InstructionCost::default();
        let mut memo_cost = InstructionCost::default();
        let mut memo = MemoTable::new();
        for m in 1..=n {
            let dp = dp_search(m, &opts, &mut dp_cost).unwrap();
            let mm = memo_search(m, &opts, &mut memo_cost, &mut memo).unwrap();
            prop_assert_eq!(mm.cost, dp.best_cost());
            prop_assert_eq!(&mm.best, dp.best_plan());
        }
    }
}
