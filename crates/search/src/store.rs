//! Crash-safe sharded wisdom store.
//!
//! [`crate::Wisdom`] alone is one JSON blob per process: a torn write or
//! a corrupt byte loses the fleet's entire tuning history. This module is
//! the durable layer underneath it — the "persistent memo" the roadmap
//! points at (optd's persistent memo store; FFTW's on-disk wisdom):
//!
//! ## Shard layout
//!
//! A store is a directory. Each **shard** holds the wisdom of exactly one
//! `(n, cost-backend)` key as written by one host, in a file named
//!
//! ```text
//! n{n:02}-{backend}-{backend_hash:08x}-{host_fingerprint}.shard
//! ```
//!
//! (`backend` sanitized for filenames, disambiguated by an FNV hash of
//! the exact name; the payload carries the authoritative key). A fleet
//! pools tuning by dropping many hosts' shards into one directory;
//! [`ShardedStore::load`] merges them key-wise, keeping the
//! **measured-fastest** entry when timing evidence exists and the
//! **newest** (by write stamp) otherwise.
//!
//! ## Shard format (version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic "WHTSHRD\0"
//! 8       4     shard format version, u32 LE
//! 12      8     write stamp (unix seconds), u64 LE
//! 20      8     payload length, u64 LE
//! 28      8     FNV-1a 64 checksum of the payload, u64 LE
//! 36      len   payload: one wisdom JSON document (current version)
//! ```
//!
//! ## Crash-safety contract
//!
//! Every shard is written **temp file → fsync → atomic rename → directory
//! fsync** ([`atomic_write`]), so a reader never observes a partially
//! written shard at its final name: a crash leaves either the previous
//! committed version or a stray `.tmp` file (which [`ShardedStore::load`]
//! ignores — uncommitted writes never surface). A shard that is
//! nevertheless damaged (torn by an unclean filesystem, bit-flipped,
//! truncated, written by a future version) is **detectable** via the
//! header and is *quarantined*, never loaded: [`ShardedStore::load`]
//! moves it into `quarantine/` and reports a typed [`StoreDiagnostic`]
//! while the remaining shards load normally. The store never panics and
//! never fails an entire load because one shard is bad; with 100% of
//! shards bad the result is an empty [`Wisdom`] plus diagnostics, and a
//! [`crate::Planner`] degrades to a cold search (see
//! [`crate::Planner::with_store`]).
//!
//! Every failure path above is exercised by the fault-injection matrix in
//! `tests/fault_matrix.rs`, driven by the hermetic [`crate::failpoints`]
//! layer (ENOSPC, short writes, fsync/rename failures, and
//! kill-at-any-byte truncation at each named IO site).

use crate::failpoints::{self, Fault};
use crate::planner::{classify_wisdom_json, Wisdom, WisdomRecord};
use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use wht_core::WhtError;

/// First 8 bytes of every shard file.
pub const SHARD_MAGIC: [u8; 8] = *b"WHTSHRD\0";

/// Current shard *container* format (the header above). Independent of
/// the wisdom JSON version inside the payload, which migrates on its own
/// schedule.
pub const SHARD_VERSION: u32 = 1;

/// Fixed header length in bytes.
pub const SHARD_HEADER_LEN: usize = 36;

/// Why a shard (or a legacy wisdom blob) was refused and quarantined.
/// One variant per failure class so operators and tests can tell a
/// truncation from a flipped bit from a future format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreDiagnostic {
    /// Structurally unreadable: bad magic, malformed JSON, an invalid
    /// plan string — the bytes do not decode as a shard at all.
    Corrupt {
        /// File name (or path) of the offending shard.
        shard: String,
        /// What failed to decode.
        detail: String,
    },
    /// The file ends before its declared length (torn write, partial
    /// copy, truncated download).
    Truncated {
        /// File name (or path) of the offending shard.
        shard: String,
        /// How short it came up.
        detail: String,
    },
    /// The shard (or wisdom blob) declares a format this build does not
    /// know; refusing is the only safe answer.
    VersionUnknown {
        /// File name (or path) of the offending shard.
        shard: String,
        /// The declared version.
        version: u32,
    },
    /// Header and length are plausible but the payload hash disagrees —
    /// silent bit rot or a tampered file.
    ChecksumMismatch {
        /// File name (or path) of the offending shard.
        shard: String,
        /// Checksum the header declares.
        expected: u64,
        /// Checksum of the bytes on disk.
        got: u64,
    },
    /// The file could not be read (or moved to quarantine) at the OS
    /// level.
    IoFailed {
        /// File name (or path) of the offending shard.
        shard: String,
        /// The underlying error, rendered.
        detail: String,
    },
}

impl StoreDiagnostic {
    /// The offending file.
    pub fn shard(&self) -> &str {
        match self {
            StoreDiagnostic::Corrupt { shard, .. }
            | StoreDiagnostic::Truncated { shard, .. }
            | StoreDiagnostic::VersionUnknown { shard, .. }
            | StoreDiagnostic::ChecksumMismatch { shard, .. }
            | StoreDiagnostic::IoFailed { shard, .. } => shard,
        }
    }

    /// Stable one-word class name (for gating tests and CLI tables).
    pub fn kind(&self) -> &'static str {
        match self {
            StoreDiagnostic::Corrupt { .. } => "corrupt",
            StoreDiagnostic::Truncated { .. } => "truncated",
            StoreDiagnostic::VersionUnknown { .. } => "version-unknown",
            StoreDiagnostic::ChecksumMismatch { .. } => "checksum-mismatch",
            StoreDiagnostic::IoFailed { .. } => "io-failed",
        }
    }
}

impl fmt::Display for StoreDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreDiagnostic::Corrupt { shard, detail } => {
                write!(f, "{shard}: corrupt ({detail})")
            }
            StoreDiagnostic::Truncated { shard, detail } => {
                write!(f, "{shard}: truncated ({detail})")
            }
            StoreDiagnostic::VersionUnknown { shard, version } => {
                write!(f, "{shard}: unknown format version {version}")
            }
            StoreDiagnostic::ChecksumMismatch {
                shard,
                expected,
                got,
            } => write!(
                f,
                "{shard}: checksum mismatch (header {expected:#018x}, payload {got:#018x})"
            ),
            StoreDiagnostic::IoFailed { shard, detail } => {
                write!(f, "{shard}: io failure ({detail})")
            }
        }
    }
}

/// FNV-1a 64-bit hash — the shard payload checksum. Not cryptographic;
/// it detects the accidental corruption the store defends against
/// (truncation, bit flips, torn writes) with zero dependencies.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn io_err(op: &str, path: &Path, detail: impl fmt::Display) -> WhtError {
    WhtError::Io {
        op: op.to_string(),
        path: path.display().to_string(),
        detail: detail.to_string(),
    }
}

/// Write `bytes` to `path` **atomically and durably**: temp file in the
/// same directory → write → fsync → rename over `path` → directory
/// fsync. A crash at any point leaves either the old file or the new one
/// at `path`, never a mixture; a graceful failure cleans up its temp
/// file. Each step is a named [`crate::failpoints`] site
/// (`atomic::create` / `atomic::write` / `atomic::fsync` /
/// `atomic::rename` / `atomic::dir_fsync`), which is how the
/// crash-consistency matrix replays every failure schedule.
///
/// Used for wisdom shards, the legacy single-blob [`Wisdom::save`], and
/// the benchmark artifacts (`BENCH_*.json`, results CSVs) — an
/// interrupted run can no longer leave a truncated half-artifact behind.
///
/// # Errors
/// [`WhtError::Io`] naming the failed step. After an error the target
/// `path` still holds its previous content (or still does not exist).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), WhtError> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| io_err("create", path, "path has no file name"))?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        name.to_string_lossy(),
        std::process::id()
    ));

    // Site: atomic::create — nothing on disk yet, so Err and Kill agree.
    if let Some(fault) = failpoints::check("atomic::create") {
        return Err(io_err("create", path, injected(fault)));
    }
    let mut f = File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;

    // Site: atomic::write.
    let write_result = match failpoints::check("atomic::write") {
        None => f.write_all(bytes).map_err(|e| io_err("write", &tmp, e)),
        Some(Fault::Err) => Err(io_err("write", &tmp, injected(Fault::Err))),
        Some(Fault::ShortWrite(b)) | Some(Fault::KillAtByte(b)) => {
            // Persist exactly the prefix a torn write (or a death
            // mid-write) would leave, then fail.
            let b = b.min(bytes.len());
            let _ = f.write_all(&bytes[..b]);
            let _ = f.sync_all();
            if failpoints::check("atomic::write").is_some_and(Fault::is_kill) {
                return Err(io_err("write", &tmp, injected(Fault::KillAtByte(b))));
            }
            Err(io_err("write", &tmp, injected(Fault::ShortWrite(b))))
        }
        Some(Fault::Kill) => return Err(io_err("write", &tmp, injected(Fault::Kill))),
    };
    if let Err(e) = write_result {
        let _ = fs::remove_file(&tmp); // graceful failure: clean up
        return Err(e);
    }

    // Site: atomic::fsync — the new bytes must be durable *before* the
    // rename makes them visible.
    match failpoints::check("atomic::fsync") {
        Some(fault) if fault.is_kill() => return Err(io_err("fsync", &tmp, injected(fault))),
        Some(fault) => {
            let _ = fs::remove_file(&tmp);
            return Err(io_err("fsync", &tmp, injected(fault)));
        }
        None => {
            if let Err(e) = f.sync_all() {
                let _ = fs::remove_file(&tmp);
                return Err(io_err("fsync", &tmp, e));
            }
        }
    }
    drop(f);

    // Site: atomic::rename — the commit point.
    match failpoints::check("atomic::rename") {
        Some(fault) if fault.is_kill() => return Err(io_err("rename", path, injected(fault))),
        Some(fault) => {
            let _ = fs::remove_file(&tmp);
            return Err(io_err("rename", path, injected(fault)));
        }
        None => {
            if let Err(e) = fs::rename(&tmp, path) {
                let _ = fs::remove_file(&tmp);
                return Err(io_err("rename", path, e));
            }
        }
    }

    // Site: atomic::dir_fsync — persist the directory entry. A *real*
    // failure here is ignored (some filesystems cannot fsync a
    // directory handle; the rename itself already happened), but an
    // injected one is reported so the matrix can exercise the
    // crashed-after-commit schedule.
    match failpoints::check("atomic::dir_fsync") {
        Some(fault) => return Err(io_err("dir-fsync", &dir, injected(fault))),
        None => {
            if let Ok(d) = File::open(&dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok(())
}

fn injected(fault: Fault) -> String {
    match fault {
        Fault::Err => "injected failure (ENOSPC: no space left on device)".to_string(),
        Fault::Kill => "injected crash".to_string(),
        Fault::ShortWrite(b) => format!("injected short write: only {b} bytes persisted"),
        Fault::KillAtByte(b) => format!("injected crash after byte {b}"),
    }
}

/// Serialize one shard: header (magic, version, stamp, length, checksum)
/// followed by the payload.
pub fn encode_shard(stamp: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(SHARD_HEADER_LEN + payload.len());
    out.extend_from_slice(&SHARD_MAGIC);
    out.extend_from_slice(&SHARD_VERSION.to_le_bytes());
    out.extend_from_slice(&stamp.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Verify and split one shard file's bytes into `(stamp, payload)`.
///
/// # Errors
/// The [`StoreDiagnostic`] classifying exactly what is wrong; a shard
/// with any diagnostic is never partially applied.
pub fn decode_shard<'a>(name: &str, bytes: &'a [u8]) -> Result<(u64, &'a [u8]), StoreDiagnostic> {
    if bytes.len() < SHARD_HEADER_LEN {
        return Err(StoreDiagnostic::Truncated {
            shard: name.to_string(),
            detail: format!(
                "{} bytes on disk, header alone needs {SHARD_HEADER_LEN}",
                bytes.len()
            ),
        });
    }
    if bytes[..8] != SHARD_MAGIC {
        return Err(StoreDiagnostic::Corrupt {
            shard: name.to_string(),
            detail: "bad magic".to_string(),
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != SHARD_VERSION {
        return Err(StoreDiagnostic::VersionUnknown {
            shard: name.to_string(),
            version,
        });
    }
    let stamp = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let declared = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    let expected = u64::from_le_bytes(bytes[28..36].try_into().expect("8 bytes"));
    let got_len = (bytes.len() - SHARD_HEADER_LEN) as u64;
    if got_len < declared {
        return Err(StoreDiagnostic::Truncated {
            shard: name.to_string(),
            detail: format!("payload {got_len} of {declared} declared bytes"),
        });
    }
    if got_len > declared {
        return Err(StoreDiagnostic::Corrupt {
            shard: name.to_string(),
            detail: format!(
                "{} trailing bytes past the declared payload",
                got_len - declared
            ),
        });
    }
    let payload = &bytes[SHARD_HEADER_LEN..];
    let got = fnv1a64(payload);
    if got != expected {
        return Err(StoreDiagnostic::ChecksumMismatch {
            shard: name.to_string(),
            expected,
            got,
        });
    }
    Ok((stamp, payload))
}

/// Keep `[A-Za-z0-9_-]`, replace the rest, cap the length — filenames
/// only; the payload carries the authoritative key.
fn sanitize(raw: &str) -> String {
    let mut s: String = raw
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    s.truncate(24);
    if s.is_empty() {
        s.push('x');
    }
    s
}

/// A stable-ish identifier for the writing host, so a pooled store
/// directory keeps one shard per `(key, host)` instead of hosts
/// clobbering each other. Override with `WHT_HOST_FP` (tests, container
/// fleets); otherwise derived from the hostname, architecture, and OS.
pub fn host_fingerprint() -> String {
    if let Ok(v) = std::env::var("WHT_HOST_FP") {
        if !v.is_empty() {
            return sanitize(&v);
        }
    }
    let host = std::env::var("HOSTNAME")
        .ok()
        .filter(|h| !h.trim().is_empty())
        .or_else(|| std::fs::read_to_string("/etc/hostname").ok())
        .unwrap_or_default();
    let host = host.trim();
    let host = if host.is_empty() {
        "unknown-host"
    } else {
        host
    };
    let raw = format!("{host}/{}/{}", std::env::consts::ARCH, std::env::consts::OS);
    format!("{}-{:08x}", sanitize(host), fnv1a64(raw.as_bytes()) as u32)
}

/// The result of [`ShardedStore::load`]: whatever could be read, plus a
/// diagnostic per shard that could not. A load never fails as a whole.
#[derive(Debug, Clone, Default)]
pub struct StoreLoad {
    /// The merged wisdom of every intact shard.
    pub wisdom: Wisdom,
    /// One entry per refused shard, in shard-name order.
    pub diagnostics: Vec<StoreDiagnostic>,
    /// Shards verified and merged.
    pub shards_loaded: usize,
    /// Shards moved into `quarantine/`.
    pub quarantined: usize,
}

/// A sharded wisdom store rooted at one directory (see the module docs
/// for layout, format, and the crash-safety contract).
#[derive(Debug, Clone)]
pub struct ShardedStore {
    root: PathBuf,
    host: String,
}

impl ShardedStore {
    /// Open (creating if needed) a store rooted at `root`, writing
    /// shards under this host's fingerprint.
    ///
    /// # Errors
    /// [`WhtError::Io`] if the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, WhtError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| io_err("create-dir", &root, e))?;
        Ok(ShardedStore {
            root,
            host: host_fingerprint(),
        })
    }

    /// Override the host fingerprint (builder style) — how tests and
    /// merge tooling simulate a fleet in one process.
    #[must_use]
    pub fn with_host(mut self, host: &str) -> Self {
        self.host = sanitize(host);
        self
    }

    /// The store directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// This store's writing-host fingerprint.
    pub fn host(&self) -> &str {
        &self.host
    }

    fn shard_file_name(&self, n: u32, backend: &str) -> String {
        format!(
            "n{n:02}-{}-{:08x}-{}.shard",
            sanitize(backend),
            fnv1a64(backend.as_bytes()) as u32,
            self.host
        )
    }

    /// Write one shard per `(n, backend)` entry of `wisdom` under this
    /// host's fingerprint, each committed atomically and stamped with
    /// the current unix time. Returns the number of shards written.
    ///
    /// # Errors
    /// [`WhtError::Io`] on the first shard that fails; already-committed
    /// shards (from this call or earlier ones) are unaffected.
    pub fn save(&self, wisdom: &Wisdom) -> Result<usize, WhtError> {
        let stamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        self.save_with_stamp(wisdom, stamp)
    }

    /// [`ShardedStore::save`] with an explicit write stamp (newest-wins
    /// merge input) — deterministic for tests and merge tooling.
    ///
    /// # Errors
    /// [`WhtError::Io`] on the first shard that fails.
    pub fn save_with_stamp(&self, wisdom: &Wisdom, stamp: u64) -> Result<usize, WhtError> {
        let mut keys = wisdom.entry_keys();
        keys.sort();
        let mut written = 0usize;
        for (n, backend) in keys {
            let payload = wisdom
                .entry_json(n, &backend)
                .expect("keys() only names present entries");
            let path = self.root.join(self.shard_file_name(n, &backend));
            atomic_write(&path, &encode_shard(stamp, payload.as_bytes()))?;
            written += 1;
        }
        Ok(written)
    }

    /// Walk the shard directory, verify every shard, quarantine the bad
    /// ones, and merge the good ones — best entry per `(n, backend)` key
    /// (measured-fastest when evidence exists, else newest stamp, ties
    /// broken toward the lexicographically earlier shard so the answer
    /// is deterministic). Never fails as a whole: the worst possible
    /// outcome is an empty [`Wisdom`] plus one diagnostic per shard.
    pub fn load(&self) -> StoreLoad {
        self.load_merged(&[], true)
    }

    /// Verify every shard **without** quarantining or merging: the
    /// number of intact shards and the diagnostics of the damaged ones.
    pub fn fsck(&self) -> (usize, Vec<StoreDiagnostic>) {
        let report = self.load_merged(&[], false);
        (report.shards_loaded, report.diagnostics)
    }

    /// [`ShardedStore::load`] across this store *and* `extra_roots`
    /// (read-only; only this store's own bad shards are quarantined) —
    /// the engine behind `wht-wisdom merge`.
    pub fn load_with(&self, extra_roots: &[PathBuf]) -> StoreLoad {
        self.load_merged(extra_roots, true)
    }

    fn load_merged(&self, extra_roots: &[PathBuf], quarantine: bool) -> StoreLoad {
        let mut report = StoreLoad::default();
        let mut stamps: HashMap<(u32, String), (u64, Option<u64>)> = HashMap::new();
        // Deterministic order: this root first, then extras, shards
        // sorted by file name within each root.
        let mut roots: Vec<(&Path, bool)> = vec![(self.root.as_path(), quarantine)];
        for extra in extra_roots {
            roots.push((extra.as_path(), false));
        }
        for (root, may_quarantine) in roots {
            let mut shards: Vec<PathBuf> = match fs::read_dir(root) {
                Ok(iter) => iter
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| {
                        p.extension().is_some_and(|x| x == "shard")
                            && !p
                                .file_name()
                                .is_some_and(|f| f.to_string_lossy().starts_with('.'))
                    })
                    .collect(),
                Err(e) => {
                    report.diagnostics.push(StoreDiagnostic::IoFailed {
                        shard: root.display().to_string(),
                        detail: e.to_string(),
                    });
                    continue;
                }
            };
            shards.sort();
            for path in shards {
                let name = path
                    .file_name()
                    .map(|f| f.to_string_lossy().into_owned())
                    .unwrap_or_else(|| path.display().to_string());
                match read_shard(&name, &path) {
                    Ok((stamp, wisdom)) => {
                        report.shards_loaded += 1;
                        for (n, backend, record) in wisdom.into_records() {
                            merge_entry(
                                &mut report.wisdom,
                                &mut stamps,
                                n,
                                &backend,
                                record,
                                stamp,
                            );
                        }
                    }
                    Err(diag) => {
                        if may_quarantine && quarantine_file(root, &path) {
                            report.quarantined += 1;
                        }
                        report.diagnostics.push(diag);
                    }
                }
            }
        }
        report
    }
}

/// Read + verify + parse one shard into `(stamp, wisdom)`.
fn read_shard(name: &str, path: &Path) -> Result<(u64, Wisdom), StoreDiagnostic> {
    let bytes = fs::read(path).map_err(|e| StoreDiagnostic::IoFailed {
        shard: name.to_string(),
        detail: e.to_string(),
    })?;
    let (stamp, payload) = decode_shard(name, &bytes)?;
    let text = std::str::from_utf8(payload).map_err(|e| StoreDiagnostic::Corrupt {
        shard: name.to_string(),
        detail: format!("payload is not UTF-8: {e}"),
    })?;
    let wisdom = classify_wisdom_json(name, text)?;
    Ok((stamp, wisdom))
}

/// Move a refused shard (or legacy wisdom blob) into `root/quarantine/`,
/// never overwriting an earlier quarantined file of the same name.
/// Best-effort: `true` when the file actually moved.
pub(crate) fn quarantine_file(root: &Path, path: &Path) -> bool {
    let qdir = root.join("quarantine");
    if fs::create_dir_all(&qdir).is_err() {
        return false;
    }
    let name = match path.file_name() {
        Some(n) => n.to_string_lossy().into_owned(),
        None => return false,
    };
    let mut target = qdir.join(&name);
    let mut suffix = 1u32;
    while target.exists() {
        target = qdir.join(format!("{name}.{suffix}"));
        suffix += 1;
    }
    fs::rename(path, &target).is_ok()
}

/// The keep-best merge rule, one key at a time: measured evidence beats
/// none; between two measured entries the faster wins (newer stamp
/// breaks exact ties); between two unmeasured entries the newer stamp
/// wins; remaining ties keep the incumbent (shards arrive in sorted
/// order, so the answer is deterministic).
fn merge_entry(
    into: &mut Wisdom,
    stamps: &mut HashMap<(u32, String), (u64, Option<u64>)>,
    n: u32,
    backend: &str,
    record: WisdomRecord,
    stamp: u64,
) {
    let key = (n, backend.to_string());
    let take = match stamps.get(&key) {
        None => true,
        Some(&(old_stamp, old_measured)) => {
            prefer_candidate(record.measured_ns, stamp, old_measured, old_stamp)
        }
    };
    if take {
        let measured = record.measured_ns;
        into.insert_record(n, backend, record);
        stamps.insert(key, (stamp, measured));
    }
}

/// `true` when the candidate entry should replace the incumbent under
/// the merge rule above.
pub(crate) fn prefer_candidate(
    cand_measured: Option<u64>,
    cand_stamp: u64,
    old_measured: Option<u64>,
    old_stamp: u64,
) -> bool {
    match (cand_measured, old_measured) {
        (Some(c), Some(o)) => c < o || (c == o && cand_stamp > old_stamp),
        (Some(_), None) => true,
        (None, Some(_)) => false,
        (None, None) => cand_stamp > old_stamp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstructionCost, Planner};
    use wht_core::Plan;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wht_store_unit_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn shard_codec_round_trips_and_classifies_damage() {
        let payload = b"{\"hello\":1}";
        let bytes = encode_shard(42, payload);
        assert_eq!(bytes.len(), SHARD_HEADER_LEN + payload.len());
        let (stamp, back) = decode_shard("s", &bytes).unwrap();
        assert_eq!(stamp, 42);
        assert_eq!(back, payload);

        // Truncation anywhere is Truncated.
        for cut in [0, 7, SHARD_HEADER_LEN - 1, SHARD_HEADER_LEN + 3] {
            let diag = decode_shard("s", &bytes[..cut]).unwrap_err();
            assert_eq!(diag.kind(), "truncated", "cut at {cut}: {diag}");
        }
        // A flipped payload bit is a checksum mismatch.
        let mut flipped = bytes.clone();
        *flipped.last_mut().unwrap() ^= 0x40;
        assert_eq!(
            decode_shard("s", &flipped).unwrap_err().kind(),
            "checksum-mismatch"
        );
        // A bad magic is Corrupt.
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(decode_shard("s", &bad_magic).unwrap_err().kind(), "corrupt");
        // A future container version is VersionUnknown.
        let mut future = bytes.clone();
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        match decode_shard("s", &future).unwrap_err() {
            StoreDiagnostic::VersionUnknown { version, .. } => assert_eq!(version, 99),
            other => panic!("expected VersionUnknown, got {other}"),
        }
        // Trailing garbage is Corrupt, not silently ignored.
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(decode_shard("s", &trailing).unwrap_err().kind(), "corrupt");
    }

    #[test]
    fn atomic_write_replaces_whole_files() {
        let dir = temp_dir("atomic");
        let path = dir.join("artifact.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second-longer-content").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second-longer-content");
        // No temp litter on the happy path.
        let stray: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(stray.is_empty(), "{stray:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_load_round_trips_a_planner_wisdom() {
        let _isolate = failpoints::scope();
        let dir = temp_dir("roundtrip");
        let mut planner = Planner::new(InstructionCost::default());
        planner.plan(6).unwrap();
        let store = ShardedStore::open(&dir).unwrap().with_host("host-a");
        let written = store.save_with_stamp(planner.wisdom(), 10).unwrap();
        assert_eq!(written, 6, "one shard per solved size");
        let loaded = store.load();
        assert!(loaded.diagnostics.is_empty(), "{:?}", loaded.diagnostics);
        assert_eq!(loaded.shards_loaded, 6);
        assert_eq!(loaded.quarantined, 0);
        assert_eq!(&loaded.wisdom, planner.wisdom());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_keeps_measured_fastest_then_newest() {
        let _isolate = failpoints::scope();
        let dir = temp_dir("merge");
        let store = ShardedStore::open(&dir).unwrap();
        let plan_a: Plan = "small[3]".parse().unwrap();
        let plan_b: Plan = "split[small[1],small[2]]".parse().unwrap();

        // Newest-wins when no evidence exists.
        let mut older = Wisdom::new();
        older.insert(3, "b", plan_a.clone()).unwrap();
        let mut newer = Wisdom::new();
        newer.insert(3, "b", plan_b.clone()).unwrap();
        store
            .clone()
            .with_host("h1")
            .save_with_stamp(&older, 100)
            .unwrap();
        store
            .clone()
            .with_host("h2")
            .save_with_stamp(&newer, 200)
            .unwrap();
        assert_eq!(store.load().wisdom.get(3, "b"), Some(&plan_b));

        // Measured evidence beats a newer unmeasured entry...
        let mut measured = Wisdom::new();
        measured.insert(3, "b", plan_a.clone()).unwrap();
        measured.record_measurement(3, "b", 900).unwrap();
        store
            .clone()
            .with_host("h3")
            .save_with_stamp(&measured, 50)
            .unwrap();
        let loaded = store.load();
        assert_eq!(loaded.wisdom.get(3, "b"), Some(&plan_a));
        assert_eq!(loaded.wisdom.measured_ns(3, "b"), Some(900));

        // ...and between two measured entries the faster wins.
        let mut faster = Wisdom::new();
        faster.insert(3, "b", plan_b.clone()).unwrap();
        faster.record_measurement(3, "b", 450).unwrap();
        store
            .clone()
            .with_host("h4")
            .save_with_stamp(&faster, 10)
            .unwrap();
        let loaded = store.load();
        assert_eq!(loaded.wisdom.get(3, "b"), Some(&plan_b));
        assert_eq!(loaded.wisdom.measured_ns(3, "b"), Some(450));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn host_fingerprint_is_filename_safe() {
        let fp = host_fingerprint();
        assert!(!fp.is_empty());
        assert!(fp
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_'));
    }
}
