//! Local search over the plan space: random-restart hill climbing with
//! tree mutations.
//!
//! The paper's introduction: "Intelligent search techniques are employed in
//! order to avoid exhaustively generating all possibilities". Besides the
//! package's DP, the classic alternative is stochastic local search over
//! split trees (cf. the STEER/evolutionary search in SPIRAL). Mutations:
//!
//! * **resplit** — replace a random subtree by a freshly sampled one of the
//!   same size;
//! * **flatten** — replace a random subtree by its flat (iterative) split;
//! * **collapse** — replace a small subtree (n <= 8) by the leaf codelet;
//! * **block** — replace a subtree by the flat split into `2^k` leaves for
//!   a random `k` (the larger-base-case shape the paper's "best" plans use);
//! * **rebalance** — replace a subtree by the balanced binary recursion;
//! * **swap** — swap two adjacent children of a split (changes strides,
//!   keeps the composition multiset).

use crate::cost::PlanCost;
use crate::strategies::Ranked;
use rand::Rng;
use wht_core::{Plan, WhtError, MAX_LEAF_K};
use wht_space::Sampler;

/// Options for [`local_search`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSearchOptions {
    /// Independent restarts (each from a fresh random plan).
    pub restarts: usize,
    /// Mutation attempts per restart without improvement before giving up.
    pub patience: usize,
}

impl Default for LocalSearchOptions {
    fn default() -> Self {
        LocalSearchOptions {
            restarts: 8,
            patience: 300,
        }
    }
}

/// Hill-climb from random starting plans, keeping the best plan found.
///
/// # Errors
/// Sampler errors for invalid `n`; cost-backend errors propagate.
pub fn local_search<C: PlanCost, R: Rng + ?Sized>(
    n: u32,
    opts: &LocalSearchOptions,
    cost_fn: &mut C,
    rng: &mut R,
) -> Result<Ranked, WhtError> {
    if opts.restarts == 0 || opts.patience == 0 {
        return Err(WhtError::InvalidConfig(
            "restarts and patience must be >= 1".into(),
        ));
    }
    let sampler = Sampler::default();
    let mut best: Option<Ranked> = None;
    for _ in 0..opts.restarts {
        let mut current = sampler.sample(n, rng)?;
        let mut current_cost = cost_fn.cost(&current)?;
        let mut stale = 0usize;
        while stale < opts.patience {
            let candidate = mutate(&current, rng);
            let cost = cost_fn.cost(&candidate)?;
            if cost < current_cost {
                current = candidate;
                current_cost = cost;
                stale = 0;
            } else {
                stale += 1;
            }
        }
        if best.as_ref().is_none_or(|b| current_cost < b.cost) {
            best = Some(Ranked {
                plan: current,
                cost: current_cost,
            });
        }
    }
    Ok(best.expect("restarts >= 1"))
}

/// Apply one random mutation, returning a valid plan of the same size.
pub fn mutate<R: Rng + ?Sized>(plan: &Plan, rng: &mut R) -> Plan {
    let nodes = plan.node_count();
    let target = rng.gen_range(0..nodes);
    let mut counter = 0usize;
    rewrite(plan, target, &mut counter, rng)
}

/// Walk the tree in preorder; apply a mutation at node `target`.
fn rewrite<R: Rng + ?Sized>(plan: &Plan, target: usize, counter: &mut usize, rng: &mut R) -> Plan {
    let here = *counter;
    *counter += 1;
    if here == target {
        return mutate_node(plan, rng);
    }
    match plan {
        Plan::Leaf { .. } => plan.clone(),
        Plan::Split { children, .. } => {
            let new_children: Vec<Plan> = children
                .iter()
                .map(|c| rewrite(c, target, counter, rng))
                .collect();
            Plan::split(new_children).expect("same sizes stay valid")
        }
    }
}

fn mutate_node<R: Rng + ?Sized>(node: &Plan, rng: &mut R) -> Plan {
    let n = node.n();
    let choice = rng.gen_range(0..6u32);
    match choice {
        // resplit: fresh random subtree of the same size.
        0 => Sampler::default()
            .sample(n, rng)
            .expect("node sizes are valid"),
        // flatten: the iterative split of this node.
        1 => Plan::iterative(n).expect("valid"),
        // collapse to a leaf when a codelet exists.
        2 if n <= MAX_LEAF_K => Plan::Leaf { k: n },
        // block: flat split into larger unrolled base cases.
        3 => {
            let k = rng.gen_range(2..=MAX_LEAF_K);
            Plan::binary_iterative(n, k).expect("valid")
        }
        // rebalance: balanced binary recursion to a random leaf bound.
        4 => {
            let k = rng.gen_range(2..=MAX_LEAF_K);
            Plan::balanced(n, k).expect("valid")
        }
        // swap two adjacent children if this is a split.
        _ => match node {
            Plan::Split { children, .. } if children.len() >= 2 => {
                let i = rng.gen_range(0..children.len() - 1);
                let mut cs = children.clone();
                cs.swap(i, i + 1);
                Plan::split(cs).expect("same sizes stay valid")
            }
            _ => Sampler::default().sample(n, rng).expect("valid size"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::InstructionCost;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wht_core::naive_wht;

    #[test]
    fn mutations_preserve_size_and_validity() {
        let mut rng = StdRng::seed_from_u64(10);
        let sampler = Sampler::default();
        for n in [3u32, 8, 14] {
            let mut plan = sampler.sample(n, &mut rng).unwrap();
            for _ in 0..200 {
                plan = mutate(&plan, &mut rng);
                assert_eq!(plan.n(), n);
                assert!(plan.validate().is_ok());
            }
        }
    }

    #[test]
    fn mutated_plans_still_compute_the_wht() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut plan = Sampler::default().sample(7, &mut rng).unwrap();
        let input: Vec<f64> = (0..128).map(|v| ((v * 5) % 13) as f64).collect();
        let want = naive_wht(&input);
        for _ in 0..25 {
            plan = mutate(&plan, &mut rng);
            let mut x = input.clone();
            wht_core::apply_plan(&plan, &mut x).unwrap();
            assert_eq!(x, want, "mutated plan {plan} is wrong");
        }
    }

    #[test]
    fn local_search_converges_to_good_plans() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut cost = InstructionCost::default();
        let found = local_search(10, &LocalSearchOptions::default(), &mut cost, &mut rng).unwrap();
        // Compare against the exact optimum from the theory DP.
        let opt = wht_models::instruction_extremes(10, &cost.cost_model, 8)
            .unwrap()
            .min as f64;
        assert!(
            found.cost <= 1.25 * opt,
            "local search found {} vs optimum {opt}",
            found.cost
        );
    }

    #[test]
    fn degenerate_options_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut cost = InstructionCost::default();
        let bad = LocalSearchOptions {
            restarts: 0,
            patience: 5,
        };
        assert!(local_search(8, &bad, &mut cost, &mut rng).is_err());
    }
}
