//! Calibrate the instruction-count model against the host machine.
//!
//! The paper's models use abstract operation counts; their *weights* are
//! architecture constants the paper never needs because Pearson correlation
//! is scale-free. For prediction in absolute units (and for studying how
//! weight choices shift the model), this module fits per-category
//! nanosecond costs by least squares over a timed sample:
//!
//! ```text
//! wall_ns(plan)  ~  sum_c  w_c * op_counts(plan).c
//! ```
//!
//! The fitted weights make `predict` a nanosecond-scale cost model that is
//! still computable from the high-level plan alone — the paper's property,
//! now in host units.

use crate::cost::PlanCost;
use rand::Rng;
use wht_core::{Plan, WhtError};
use wht_measure::{time_plan, TimingConfig};
use wht_models::{op_counts, OpCounts};
use wht_space::Sampler;
use wht_stats::{pearson, ridge_regression};

/// A calibrated, real-valued cost model (nanoseconds per operation
/// category).
#[derive(Debug, Clone, PartialEq)]
pub struct CalibratedCost {
    /// Weights for (arith, loads, stores, addr, leaf_calls,
    /// node_invocations, outer_iters, j_iters, k_iters), in ns.
    pub weights: [f64; 9],
    /// Pearson correlation between predictions and the calibration timings.
    pub fit_rho: f64,
    /// Number of plans timed during calibration.
    pub sample_size: usize,
}

/// Feature vector of a plan: the nine operation-count categories.
pub fn features(counts: &OpCounts) -> [f64; 9] {
    [
        counts.arith as f64,
        counts.loads as f64,
        counts.stores as f64,
        counts.addr as f64,
        counts.leaf_calls as f64,
        counts.node_invocations as f64,
        counts.outer_iters as f64,
        counts.j_iters as f64,
        counts.k_iters as f64,
    ]
}

impl CalibratedCost {
    /// Predicted nanoseconds for a plan.
    pub fn predict(&self, plan: &Plan) -> f64 {
        let f = features(&op_counts(plan));
        f.iter().zip(self.weights.iter()).map(|(a, w)| a * w).sum()
    }
}

impl PlanCost for CalibratedCost {
    fn cost(&mut self, plan: &Plan) -> Result<f64, WhtError> {
        Ok(self.predict(plan))
    }

    fn name(&self) -> &'static str {
        "calibrated-model"
    }
}

/// Calibration options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalibrateOptions {
    /// Plans to sample and time per size.
    pub samples_per_size: usize,
    /// Transform exponents to calibrate over (mixing sizes conditions the
    /// fit; in-cache sizes keep memory effects out of the weights).
    pub sizes: [u32; 3],
    /// Timing methodology.
    pub timing: TimingConfig,
}

impl Default for CalibrateOptions {
    fn default() -> Self {
        CalibrateOptions {
            samples_per_size: 60,
            sizes: [8, 10, 12],
            timing: TimingConfig::default(),
        }
    }
}

/// Fit a [`CalibratedCost`] by timing random plans.
///
/// The operation categories are structurally collinear (every plan has
/// `loads == stores` and `addr == 2 * loads`), so the fit uses ridge
/// regression — attribution between collinear categories is arbitrary but
/// predictions are well-defined. Columns that end up with (unphysical)
/// negative weights are clamped to zero; the reported `fit_rho` is computed
/// *after* clamping, so it reflects the model actually returned.
///
/// # Errors
/// [`WhtError::InvalidConfig`] for degenerate options; timing errors
/// propagate.
pub fn calibrate<R: Rng + ?Sized>(
    opts: &CalibrateOptions,
    rng: &mut R,
) -> Result<CalibratedCost, WhtError> {
    if opts.samples_per_size < 12 {
        return Err(WhtError::InvalidConfig(
            "need at least 12 samples per size to fit 9 weights".into(),
        ));
    }
    let sampler = Sampler::default();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut times: Vec<f64> = Vec::new();
    for &n in &opts.sizes {
        for _ in 0..opts.samples_per_size {
            let plan = sampler.sample(n, rng)?;
            rows.push(features(&op_counts(&plan)).to_vec());
            times.push(time_plan(&plan, &opts.timing)?.median_ns);
        }
    }
    let raw = ridge_regression(&rows, &times, 1e-8);
    let mut weights = [0.0f64; 9];
    for (w, r) in weights.iter_mut().zip(raw.iter()) {
        *w = r.max(0.0);
    }
    let preds: Vec<f64> = rows
        .iter()
        .map(|r| r.iter().zip(weights.iter()).map(|(a, w)| a * w).sum())
        .collect();
    let fit_rho = pearson(&preds, &times);
    Ok(CalibratedCost {
        weights,
        fit_rho,
        sample_size: times.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_opts() -> CalibrateOptions {
        CalibrateOptions {
            samples_per_size: 25,
            sizes: [6, 8, 10],
            timing: TimingConfig::fast(),
        }
    }

    #[test]
    fn calibration_produces_a_predictive_model() {
        let mut rng = StdRng::seed_from_u64(2024);
        let model = calibrate(&quick_opts(), &mut rng).unwrap();
        assert_eq!(model.sample_size, 75);
        assert!(model.weights.iter().all(|&w| w >= 0.0));
        // On the machine running the tests the fit should explain most of
        // the variance even with the fast timing config.
        assert!(
            model.fit_rho > 0.8,
            "calibration rho too low: {}",
            model.fit_rho
        );
        // Predictions scale with size.
        let small = model.predict(&Plan::right_recursive(6).unwrap());
        let large = model.predict(&Plan::right_recursive(12).unwrap());
        assert!(large > small);
    }

    #[test]
    fn calibrated_model_is_a_cost_backend() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut model = calibrate(&quick_opts(), &mut rng).unwrap();
        let c = model.cost(&Plan::iterative(8).unwrap()).unwrap();
        assert!(c > 0.0);
        assert_eq!(model.name(), "calibrated-model");
    }

    #[test]
    fn degenerate_options_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let bad = CalibrateOptions {
            samples_per_size: 3,
            ..quick_opts()
        };
        assert!(calibrate(&bad, &mut rng).is_err());
    }

    #[test]
    fn feature_vector_matches_op_counts() {
        let plan = Plan::iterative(5).unwrap();
        let c = op_counts(&plan);
        let f = features(&c);
        assert_eq!(f[0], c.arith as f64);
        assert_eq!(f[8], c.k_iters as f64);
    }
}
