//! Cost functions the searchers can optimize.
//!
//! The WHT package searches by *empirical runtime*; the paper's point is
//! that *model* costs (computable without running) can stand in for much of
//! that search. Both are [`PlanCost`] implementations here, so every search
//! strategy works with either backend.

use serde::{Deserialize, Serialize};
use wht_cachesim::Hierarchy;
use wht_core::{
    lane_width, BatchPolicy, CompiledPlan, ExecPolicy, FusionPolicy, Plan, RecodeletPolicy,
    RelayoutPolicy, SimdPolicy, StreamPolicy, WhtError,
};
use wht_measure::{simulated_cycles, time_plan, SimMachine, TimingConfig};
use wht_models::{analytic_misses, instruction_count, op_counts, CostModel, ModelCache};

/// A (possibly stateful) cost function over plans; smaller is better.
pub trait PlanCost {
    /// Evaluate one plan.
    ///
    /// # Errors
    /// Backend-specific failures (e.g. invalid timing configuration).
    fn cost(&mut self, plan: &Plan) -> Result<f64, WhtError>;

    /// Human-readable backend name, used in experiment logs.
    fn name(&self) -> &'static str;

    /// The term vector behind `cost(plan)`, for provenance recording.
    ///
    /// Scalar-only backends return `Ok(None)` (the default); vectored
    /// backends ([`VectorCost`]) return the same [`CostVec`] as
    /// [`VectorCost::cost_vector`] so the memo table can stamp each group
    /// winner with *which terms* made it win without the search being
    /// generic over the vector trait.
    ///
    /// # Errors
    /// Same failure modes as [`PlanCost::cost`].
    fn cost_terms(&mut self, plan: &Plan) -> Result<Option<CostVec>, WhtError> {
        let _ = plan;
        Ok(None)
    }

    /// A lower bound on the cost of **any** split of span `2^m` whose
    /// ordered children have the given spans and per-child best standalone
    /// costs (`parts[i] = (c_i, best_cost(c_i))`).
    ///
    /// `None` (the default) means "no sound bound is known" and disables
    /// branch-and-bound pruning for this backend — the memo search then
    /// evaluates every candidate, exactly like [`crate::dp_search`].
    /// Backends whose recursion is *invocation-superadditive* — a child of
    /// span `c_i` inside a span-`m` split executes `2^(m-c_i)` times, each
    /// at least as expensive as one standalone run — return
    /// [`invocation_scaled_bound`]. That holds for the instruction model
    /// (exactly: the split adds loop overhead on top) and for the combined
    /// model (analytic misses are stride-monotone, and every in-split
    /// invocation runs at stride ≥ 1), but **not** for
    /// [`FusedTrafficCost`]: fusion collapses the sweeps of adjacent
    /// factors, so a split can stream *less* than its parts in isolation.
    fn compose_lower_bound(&self, m: u32, parts: &[(u32, f64)]) -> Option<f64> {
        let _ = (m, parts);
        None
    }
}

/// The invocation-scaled composition bound `Σ 2^(m-c_i) · best(c_i)`:
/// inside a span-`m` split, the child of span `c_i` is invoked
/// `2^(m-c_i)` times. Sound as a [`PlanCost::compose_lower_bound`]
/// whenever one in-split invocation costs at least one standalone run of
/// the best span-`c_i` plan (see the trait docs for which backends
/// qualify).
pub fn invocation_scaled_bound(m: u32, parts: &[(u32, f64)]) -> f64 {
    parts
        .iter()
        .map(|&(c, best)| (1u64 << (m - c.min(m))) as f64 * best)
        .sum()
}

/// A vectored plan cost in the style of optd's `Cost(Vec<f64>)`: slot 0 is
/// the weighted collapse the searches compare, the remaining slots are the
/// named terms it was collapsed from.
#[derive(Debug, Clone, PartialEq)]
pub struct CostVec(pub Vec<f64>);

impl CostVec {
    /// Slot of the weighted collapse (what [`PlanCost::cost`] returns).
    pub const WEIGHTED: usize = 0;
    /// Slot of the work term (single-transform instructions / flops).
    pub const WORK: usize = 1;
    /// Slot of the memory-traffic term (streamed elements or model misses).
    pub const TRAFFIC: usize = 2;
    /// Slot of the lane-width-adjusted work term (full-SIMD-width work,
    /// what a batched cross-transform execution retires).
    pub const LANE_WORK: usize = 3;
    /// Number of slots.
    pub const LEN: usize = 4;

    /// Build from the three named terms, collapsing under `weights`.
    pub fn from_terms(work: f64, traffic: f64, lane_work: f64, weights: CostWeights) -> Self {
        CostVec(vec![
            weights.collapse(work, traffic, lane_work),
            work,
            traffic,
            lane_work,
        ])
    }

    /// The weighted collapse (slot 0).
    pub fn weighted(&self) -> f64 {
        self.0[Self::WEIGHTED]
    }

    /// The work term.
    pub fn work(&self) -> f64 {
        self.0[Self::WORK]
    }

    /// The traffic term.
    pub fn traffic(&self) -> f64 {
        self.0[Self::TRAFFIC]
    }

    /// The lane-width-adjusted work term.
    pub fn lane_work(&self) -> f64 {
        self.0[Self::LANE_WORK]
    }

    /// One-line rendering for logs and `Planner::explain`.
    pub fn explain(&self) -> String {
        format!(
            "weighted={:.3} (work={:.3}, traffic={:.3}, lane_work={:.3})",
            self.weighted(),
            self.work(),
            self.traffic(),
            self.lane_work()
        )
    }
}

/// Weights collapsing a [`CostVec`]'s named terms into one comparable
/// scalar — optd's `compute_cost + io_cost * 10.0` generalized to the
/// three terms this package models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Weight on single-transform work (instructions / flops).
    pub work: f64,
    /// Weight on memory traffic (streamed elements or model misses).
    pub traffic: f64,
    /// Weight on lane-width-adjusted (full-SIMD-width) work.
    pub lane_work: f64,
}

impl Default for CostWeights {
    /// Pure work: cost = the work term, nothing else.
    fn default() -> Self {
        CostWeights {
            work: 1.0,
            traffic: 0.0,
            lane_work: 0.0,
        }
    }
}

impl CostWeights {
    /// Collapse the three terms into the comparable scalar.
    pub fn collapse(&self, work: f64, traffic: f64, lane_work: f64) -> f64 {
        self.work * work + self.traffic * traffic + self.lane_work * lane_work
    }
}

/// A named multi-objective policy: which weighting a [`VectorCost`]
/// backend collapses its term vector under. One objective swap re-aims the
/// same memo search at latency, memory traffic, or batched throughput;
/// `Planner` records the choice in wisdom so replays stay consistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostObjective {
    /// Single-transform latency: the backend's default weighting.
    Latency,
    /// Memory traffic only: minimize streamed elements / model misses.
    Memory,
    /// Saturated-batch throughput: full-lane-width work; memory latency
    /// (not bandwidth) hides behind the batch.
    BatchThroughput,
}

impl CostObjective {
    /// Every objective, for iteration in tests and benches.
    pub const ALL: [CostObjective; 3] = [
        CostObjective::Latency,
        CostObjective::Memory,
        CostObjective::BatchThroughput,
    ];

    /// Stable lowercase name for logs.
    pub fn name(self) -> &'static str {
        match self {
            CostObjective::Latency => "latency",
            CostObjective::Memory => "memory",
            CostObjective::BatchThroughput => "batch-throughput",
        }
    }
}

/// A [`PlanCost`] that exposes its term vector and its collapse weights —
/// optd's `CostModel` shape. `cost(plan)` must equal
/// `cost_vector(plan)?.weighted()` so scalar searches and vector
/// provenance never disagree.
pub trait VectorCost: PlanCost {
    /// The full term vector for one plan (slot 0 = weighted collapse).
    ///
    /// # Errors
    /// Same failure modes as [`PlanCost::cost`].
    fn cost_vector(&mut self, plan: &Plan) -> Result<CostVec, WhtError>;

    /// The collapse weights currently in effect.
    fn weights(&self) -> CostWeights;

    /// Replace the collapse weights (re-aims every subsequent `cost`).
    fn set_weights(&mut self, weights: CostWeights);

    /// This backend's weighting for a named objective.
    fn objective_weights(&self, objective: CostObjective) -> CostWeights;

    /// Re-aim the backend at a named objective.
    fn set_objective(&mut self, objective: CostObjective) {
        self.set_weights(self.objective_weights(objective));
    }
}

/// The instruction-count model (context-free: the unique cost backend for
/// which dynamic programming is *exact*).
#[derive(Debug, Clone, Default)]
pub struct InstructionCost {
    /// Abstract machine weights.
    pub cost_model: CostModel,
    /// Collapse weights over (work, traffic, lane_work). The model has no
    /// traffic term and its work is lane-agnostic, so work and lane_work
    /// both carry the instruction count; the default (`work = 1`) makes
    /// `cost` the plain instruction count.
    pub weights: CostWeights,
}

impl InstructionCost {
    fn instruction_term(&self, plan: &Plan) -> f64 {
        instruction_count(plan, &self.cost_model) as f64
    }
}

impl PlanCost for InstructionCost {
    fn cost(&mut self, plan: &Plan) -> Result<f64, WhtError> {
        let i = self.instruction_term(plan);
        Ok(self.weights.collapse(i, 0.0, i))
    }

    fn name(&self) -> &'static str {
        "instruction-model"
    }

    fn cost_terms(&mut self, plan: &Plan) -> Result<Option<CostVec>, WhtError> {
        Ok(Some(self.cost_vector(plan)?))
    }

    fn compose_lower_bound(&self, m: u32, parts: &[(u32, f64)]) -> Option<f64> {
        // T(split) = Σ 2^(m-c_i)·T(c_i) + overhead(c_1..c_t): the
        // recursion is invocation-linear and the overhead term is exactly
        // computable from the part exponents, so scaled-children + overhead
        // is a *tight* lower bound (exact when the children are the memo's
        // own best plans) whenever the collapse is monotone in the
        // instruction term (non-negative weights).
        if self.weights.work < 0.0 || self.weights.traffic < 0.0 || self.weights.lane_work < 0.0 {
            return None;
        }
        let exps: Vec<u32> = parts.iter().map(|&(c, _)| c).collect();
        let ov = self.cost_model.split_overhead(m, &exps) as f64;
        Some((self.weights.work + self.weights.lane_work) * ov + invocation_scaled_bound(m, parts))
    }
}

impl VectorCost for InstructionCost {
    fn cost_vector(&mut self, plan: &Plan) -> Result<CostVec, WhtError> {
        let i = self.instruction_term(plan);
        Ok(CostVec::from_terms(i, 0.0, i, self.weights))
    }

    fn weights(&self) -> CostWeights {
        self.weights
    }

    fn set_weights(&mut self, weights: CostWeights) {
        self.weights = weights;
    }

    fn objective_weights(&self, objective: CostObjective) -> CostWeights {
        // The model has one real signal; every objective reads it through
        // a different slot, but the ordering only changes if a caller
        // mixes in custom terms via set_weights.
        match objective {
            CostObjective::Latency | CostObjective::Memory => CostWeights::default(),
            CostObjective::BatchThroughput => CostWeights {
                work: 0.0,
                traffic: 0.0,
                lane_work: 1.0,
            },
        }
    }
}

/// The paper's combined model `alpha*I + beta*M` with analytic misses.
#[derive(Debug, Clone)]
pub struct CombinedModelCost {
    /// Abstract machine weights for `I`.
    pub cost_model: CostModel,
    /// Direct-mapped model cache for `M`.
    pub cache: ModelCache,
    /// Weight on instructions.
    pub alpha: f64,
    /// Weight on misses.
    pub beta: f64,
}

impl CombinedModelCost {
    /// The paper's optimum (`alpha = 1, beta = 0.05`) against the Opteron
    /// L1-sized model cache.
    pub fn paper_default() -> Self {
        CombinedModelCost {
            cost_model: CostModel::default(),
            cache: ModelCache::opteron_l1_elems(),
            alpha: 1.0,
            beta: 0.05,
        }
    }
}

impl PlanCost for CombinedModelCost {
    fn cost(&mut self, plan: &Plan) -> Result<f64, WhtError> {
        let i = instruction_count(plan, &self.cost_model) as f64;
        let m = analytic_misses(plan, self.cache) as f64;
        Ok(self.alpha * i + self.beta * m)
    }

    fn name(&self) -> &'static str {
        "combined-model"
    }

    fn cost_terms(&mut self, plan: &Plan) -> Result<Option<CostVec>, WhtError> {
        Ok(Some(self.cost_vector(plan)?))
    }

    fn compose_lower_bound(&self, m: u32, parts: &[(u32, f64)]) -> Option<f64> {
        // Instructions are invocation-linear with an overhead term that is
        // exactly computable from the part exponents, so the instruction
        // side of the bound is exact. The miss side splits by regime:
        //
        // * `m <= c` (footprint fits): every plan of size `m` — and every
        //   child standalone — pays compulsory misses exactly, so the
        //   scaled child sum counts the `2^m` footprint once per child
        //   where the composed plan pays it once. Subtracting the
        //   `(t-1)·2^m` over-count makes the miss side exact too.
        // * `m > c` (thrashes): inside the split each child runs at a
        //   stride at least its standalone stride, and the analytic model
        //   is monotone in stride, so the plain scaled sum is a sound
        //   (now conservative) floor.
        if self.alpha < 0.0 || self.beta < 0.0 {
            return None;
        }
        let exps: Vec<u32> = parts.iter().map(|&(c, _)| c).collect();
        let ov = self.cost_model.split_overhead(m, &exps) as f64;
        let mut lb = self.alpha * ov + invocation_scaled_bound(m, parts);
        if m <= self.cache.log2_capacity {
            lb -= self.beta * (parts.len() as f64 - 1.0) * (1u64 << m) as f64;
        }
        Some(lb)
    }
}

impl VectorCost for CombinedModelCost {
    fn cost_vector(&mut self, plan: &Plan) -> Result<CostVec, WhtError> {
        let i = instruction_count(plan, &self.cost_model) as f64;
        let m = analytic_misses(plan, self.cache) as f64;
        Ok(CostVec::from_terms(i, m, i, self.weights()))
    }

    fn weights(&self) -> CostWeights {
        CostWeights {
            work: self.alpha,
            traffic: self.beta,
            lane_work: 0.0,
        }
    }

    /// `work` maps onto `alpha`, `traffic` onto `beta`; the model has no
    /// lane-width term, so `lane_work` is ignored (the vector still
    /// carries the instruction count in that slot for inspection).
    fn set_weights(&mut self, weights: CostWeights) {
        self.alpha = weights.work;
        self.beta = weights.traffic;
    }

    fn objective_weights(&self, objective: CostObjective) -> CostWeights {
        match objective {
            // The paper's fitted latency blend.
            CostObjective::Latency => CostWeights {
                work: 1.0,
                traffic: 0.05,
                lane_work: 0.0,
            },
            // Pure miss minimization.
            CostObjective::Memory => CostWeights {
                work: 0.0,
                traffic: 1.0,
                lane_work: 0.0,
            },
            // A saturated batch hides memory latency behind independent
            // transforms; throughput is instruction-bound.
            CostObjective::BatchThroughput => CostWeights {
                work: 1.0,
                traffic: 0.0,
                lane_work: 0.0,
            },
        }
    }
}

/// Fusion-aware model cost `alpha·I + beta·T`: instruction count plus the
/// memory traffic of the schedule the fused executor *actually replays*.
///
/// The combined model charges analytic cache misses of the interpreter's
/// execution order; production traffic runs through the compiled layer,
/// where [`CompiledPlan::fuse`] collapses each fused run to a single
/// sweep. This backend scores that: `T` counts the elements streamed by
/// the fused schedule — a super-pass whose tile fits
/// [`FusedTrafficCost::cache_elems`] streams its span once (load +
/// store); one whose tile cannot stay cache-resident streams once per
/// part, like the unfused program it effectively is. Plans whose factor
/// lists fuse into fewer resident super-passes under `policy` cost less —
/// the search optimizes the executor it will actually run, tile budget
/// included.
#[derive(Debug, Clone)]
pub struct FusedTrafficCost {
    /// Abstract machine weights for `I`.
    pub cost_model: CostModel,
    /// The full executor configuration the ranked plans will be lowered
    /// under: the cost function scores `compile(plan).lower(&exec)` —
    /// the exact schedule the executor replays — so every lowering stage
    /// (fusion's tile blocking, relayout's two-sweep transposes, the
    /// re-codeleted tail's merged factors, the kernel backend) shows up
    /// in the ranking the moment it exists, with no per-stage code here.
    pub exec: ExecPolicy,
    /// Elements that fit the cache level tiles are expected to live in.
    /// A super-pass whose tile exceeds this is charged one sweep **per
    /// part** — fusion buys no traffic once the tile itself cannot stay
    /// resident (e.g. an unbounded budget collapses the schedule to one
    /// vector-sized tile, which still streams once per factor).
    pub cache_elems: usize,
    /// Vector width of the kernel backend the executor will run: each
    /// pass's leaf work term (butterflies, element loads/stores and their
    /// address arithmetic) is divided by its **effective** width
    /// `min(s, W)`, because the lane-block kernels retire columns in
    /// unit-stride blocks and a single transform only offers a pass `s`
    /// adjacent columns — the narrow head passes (`s < W`) cannot go full
    /// width (the batched cross-transform path exists precisely to fix
    /// that; see [`FusedTrafficCost::batch_rows`]). `1` models the scalar
    /// backend; loop bookkeeping is never divided (the lane kernels run
    /// the same pass/row loops). Matching the ranking model to the
    /// executor matters: under SIMD the ALU term shrinks, so memory
    /// traffic weighs relatively more and traffic-lean plans rank higher
    /// — exactly what wall-clock measurement shows.
    pub simd_lanes: usize,
    /// `Some(rows)`: score the **batched** execution of a `rows × 2^n`
    /// batch through [`CompiledPlan::apply_batch`] instead of one
    /// transform — the total for all `rows`. When the lowered schedule
    /// carries a batch product and `rows` reaches its threshold, engaged
    /// lane groups run every pass at full width (that is what the
    /// transposed domain buys) and are charged one streamed sweep of the
    /// group for the transpose pair (the gather's read of `x` and the
    /// scatter's write back; the scratch side is cache-resident by the
    /// batch stage's size cap); the sub-group remainder — and the whole
    /// batch when disengaged — replays at `rows ×` the single-transform
    /// cost. `None` (the default) scores one transform, exactly as
    /// before. This is what lets `wht_search::Planner` tune
    /// [`wht_core::BatchPolicy::block_rows`] from wisdom: the crossover
    /// where `Some(rows)` stops preferring the batched schedule *is* the
    /// threshold.
    pub batch_rows: Option<usize>,
    /// Collapse weights over the term vector: `work` multiplies the
    /// single-transform instruction term, `traffic` the streamed-element
    /// term, `lane_work` the full-SIMD-width instruction term (what a
    /// batched cross-transform execution retires). The historical
    /// `alpha`/`beta` scalars are `weights.work`/`weights.traffic`.
    pub weights: CostWeights,
}

impl FusedTrafficCost {
    /// Cost under an explicit [`ExecPolicy`] with the default weights
    /// (`work = 1`, `traffic = 4`: a streamed element costs about what a
    /// handful of bookkeeping instructions does, matching the combined
    /// model's miss-penalty scale on 8-element lines) and an L2-sized
    /// residency threshold. The lane width models the measured default
    /// element type, `f64`. Construction is deterministic — nothing here
    /// reads the process environment (use
    /// `with_exec(ExecPolicy::from_env())` for that).
    pub fn with_exec(exec: ExecPolicy) -> Self {
        FusedTrafficCost {
            cost_model: CostModel::default(),
            cache_elems: FusionPolicy::DEFAULT_BUDGET_ELEMS,
            simd_lanes: if exec.simd.enabled() {
                lane_width::<f64>()
            } else {
                1
            },
            exec,
            batch_rows: None,
            weights: CostWeights {
                work: 1.0,
                traffic: 4.0,
                lane_work: 0.0,
            },
        }
    }

    /// This cost with batched scoring for `rows`-row batches (builder
    /// style; see [`FusedTrafficCost::batch_rows`]).
    #[must_use]
    pub fn with_batch_rows(mut self, rows: usize) -> Self {
        self.batch_rows = Some(rows);
        self
    }

    /// Cost under an explicit fusion policy + kernel backend, with the
    /// default relayout policy and re-codeleting
    /// ([`FusedTrafficCost::with_exec`] pins the full configuration).
    pub fn with_backends(policy: FusionPolicy, simd: SimdPolicy) -> Self {
        FusedTrafficCost::with_executor(policy, RelayoutPolicy::default(), simd)
    }

    /// Cost under the three pre-pipeline executor knobs: fusion policy,
    /// tail-relayout policy, and kernel backend (re-codeleting at
    /// its default).
    pub fn with_executor(policy: FusionPolicy, relayout: RelayoutPolicy, simd: SimdPolicy) -> Self {
        FusedTrafficCost::with_exec(ExecPolicy {
            fusion: policy,
            relayout,
            recodelet: RecodeletPolicy::default(),
            simd,
            batch: BatchPolicy::default(),
            stream: StreamPolicy::default(),
        })
    }

    /// Explicit fusion policy with the process-default remaining stages
    /// (lane kernels unless `WHT_NO_SIMD=1`, tail relayout per
    /// `WHT_NO_RELAYOUT` / `WHT_RELAYOUT_THRESHOLD`, re-codeleting per
    /// `WHT_NO_RECODELET`) — the env-aware constructor, so a
    /// default-built cost model ranks plans for the executor this
    /// process actually runs.
    pub fn with_policy(policy: FusionPolicy) -> Self {
        FusedTrafficCost::with_exec(ExecPolicy::from_env().with_fusion(policy))
    }
}

impl Default for FusedTrafficCost {
    fn default() -> Self {
        FusedTrafficCost::with_policy(FusionPolicy::default())
    }
}

impl FusedTrafficCost {
    /// The (work, traffic, lane_work) term triple behind [`Self::cost`]:
    /// single-transform instruction term, streamed elements, and the
    /// full-SIMD-width instruction term.
    fn terms(&self, plan: &Plan) -> (f64, f64, f64) {
        // Lower the plan exactly as the executor will; everything below
        // scores that schedule generically, stage-agnostically.
        let compiled = CompiledPlan::compile(plan).lower(&self.exec);
        // Instruction term, split into loop bookkeeping (from the plan
        // tree — the lane kernels run the same pass/row loops) and leaf
        // work re-derived from the *lowered* factor list: a stage that
        // rewrites factors (the re-codeleted tail merges m chained
        // factors into one codelet, dropping m-1 load/store passes over
        // its elements) is scored from what will actually execute.
        let ops = op_counts(plan);
        let plan_leaf_work = (self.cost_model.arith * ops.arith
            + self.cost_model.load * ops.loads
            + self.cost_model.store * ops.stores
            + self.cost_model.addr * ops.addr) as f64;
        let bookkeeping = self.cost_model.total(&ops) as f64 - plan_leaf_work;
        let lanes = self.simd_lanes.max(1);
        // Leaf work twice over: at each pass's single-transform effective
        // width min(s, W) — a lone transform only offers a pass s adjacent
        // unit-stride columns, so the narrow head passes cannot fill the
        // lanes — and at full width, which is what the batched
        // cross-transform domain restores for every pass.
        let mut leaf_single = 0f64;
        let mut leaf_full = 0f64;
        for pass in compiled.passes() {
            // One codelet invocation of size 2^k: k·2^k butterfly ops,
            // 2^k loads + 2^k stores, one address computation per load
            // and store (the same accounting as `op_counts` on a leaf).
            let size = 1u64 << pass.k;
            let inv = pass.invocations() as u64;
            let work = (inv
                * (self.cost_model.arith * u64::from(pass.k) * size
                    + (self.cost_model.load + self.cost_model.store + 2 * self.cost_model.addr)
                        * size)) as f64;
            leaf_single += work / pass.s.max(1).min(lanes) as f64;
            leaf_full += work / lanes as f64;
        }
        // Traffic term: sweeps per scheduling unit, off the lowered
        // schedule. A relayout unit is charged two streamed sweeps — the
        // gather (strided reads + scratch writes) and the scatter
        // (scratch reads + strided writes) — instead of the one sweep
        // per factor its tail would cost in place, so the search picks
        // relayout exactly where the two transposes beat the saved
        // sweeps.
        let streamed: usize = compiled
            .super_passes()
            .iter()
            .map(|sp| {
                let sweeps = if sp.is_relayout() {
                    2
                } else if sp.tile_elems() <= self.cache_elems {
                    1
                } else {
                    sp.parts().len()
                };
                sp.span() * sweeps
            })
            .sum();
        let single = (
            bookkeeping + leaf_single,
            (2 * streamed) as f64,
            bookkeeping + leaf_full,
        );
        let Some(rows) = self.batch_rows else {
            return single;
        };
        // Batched scoring: model what apply_batch runs for this batch.
        // Engaged lane groups pay one streamed sweep of the whole group —
        // the transpose pair moves the group through memory exactly once
        // (gather reads x, scatter writes it back; the transposed scratch
        // is cache-resident by the batch stage's size cap, and the tail
        // passes run on the still-resident group) — and every pass goes
        // full width in the transposed domain, so an engaged group's work
        // *is* the full-width term (charged to both work and lane_work).
        let w = lanes;
        let engaged = compiled
            .batch_schedule()
            .filter(|b| rows >= b.block_rows().max(w));
        match engaged {
            Some(_) => {
                let groups = (rows / w) as f64;
                let rem = (rows % w) as f64;
                let group_work = w as f64 * (bookkeeping + leaf_full);
                let group_traffic = (2 * w * compiled.size()) as f64;
                (
                    groups * group_work + rem * single.0,
                    groups * group_traffic + rem * single.1,
                    groups * group_work + rem * single.2,
                )
            }
            None => (
                rows as f64 * single.0,
                rows as f64 * single.1,
                rows as f64 * single.2,
            ),
        }
    }
}

impl PlanCost for FusedTrafficCost {
    fn cost(&mut self, plan: &Plan) -> Result<f64, WhtError> {
        let (work, traffic, lane_work) = self.terms(plan);
        Ok(self.weights.collapse(work, traffic, lane_work))
    }

    fn name(&self) -> &'static str {
        "fused-traffic"
    }

    fn cost_terms(&mut self, plan: &Plan) -> Result<Option<CostVec>, WhtError> {
        Ok(Some(self.cost_vector(plan)?))
    }

    // No compose_lower_bound override: fusion collapses the sweeps of
    // adjacent factors, so a split can legitimately stream *less* than
    // its parts in isolation — the invocation-scaled bound is unsound
    // here, and the memo search falls back to exhaustive evaluation
    // (still memoized across sizes and searches).
}

impl VectorCost for FusedTrafficCost {
    fn cost_vector(&mut self, plan: &Plan) -> Result<CostVec, WhtError> {
        let (work, traffic, lane_work) = self.terms(plan);
        Ok(CostVec::from_terms(work, traffic, lane_work, self.weights))
    }

    fn weights(&self) -> CostWeights {
        self.weights
    }

    fn set_weights(&mut self, weights: CostWeights) {
        self.weights = weights;
    }

    fn objective_weights(&self, objective: CostObjective) -> CostWeights {
        match objective {
            // The measured single-transform blend (the default).
            CostObjective::Latency => CostWeights {
                work: 1.0,
                traffic: 4.0,
                lane_work: 0.0,
            },
            // Pure streamed-element minimization.
            CostObjective::Memory => CostWeights {
                work: 0.0,
                traffic: 1.0,
                lane_work: 0.0,
            },
            // Batched serving: every pass runs full width in the
            // transposed domain, so single-width work is irrelevant and
            // bandwidth still costs.
            CostObjective::BatchThroughput => CostWeights {
                work: 0.0,
                traffic: 4.0,
                lane_work: 1.0,
            },
        }
    }
}

/// Deterministic simulated cycles on the reference Opteron (trace-driven:
/// much more expensive than the models, noise-free unlike the wall clock).
#[derive(Debug)]
pub struct SimCyclesCost {
    /// Abstract machine weights.
    pub cost_model: CostModel,
    /// Latency parameters.
    pub machine: SimMachine,
    hierarchy: Hierarchy,
}

impl SimCyclesCost {
    /// Simulated cycles on the paper's Opteron hierarchy.
    pub fn opteron() -> Self {
        SimCyclesCost {
            cost_model: CostModel::default(),
            machine: SimMachine::default(),
            hierarchy: Hierarchy::opteron(),
        }
    }
}

impl PlanCost for SimCyclesCost {
    fn cost(&mut self, plan: &Plan) -> Result<f64, WhtError> {
        // Cold-start the hierarchy *here*, not only inside the trace:
        // this backend's contract is that cost(plan) is a pure function
        // of the plan, so no simulator state (resident lines or counters)
        // may leak from one evaluation into the next whatever the callee
        // does. Regression-tested below (cost order must not matter).
        self.hierarchy.reset();
        Ok(simulated_cycles(
            plan,
            &self.cost_model,
            &self.machine,
            &mut self.hierarchy,
        ))
    }

    fn name(&self) -> &'static str {
        "sim-cycles"
    }
}

/// Median wall-clock nanoseconds (what the WHT package's own search uses).
#[derive(Debug, Clone, Default)]
pub struct WallClockCost {
    /// Timing methodology.
    pub timing: TimingConfig,
}

impl PlanCost for WallClockCost {
    fn cost(&mut self, plan: &Plan) -> Result<f64, WhtError> {
        Ok(time_plan(plan, &self.timing)?.median_ns)
    }

    fn name(&self) -> &'static str {
        "wall-clock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_backends_are_deterministic() {
        let plan = Plan::right_recursive(10).unwrap();
        let mut c1 = InstructionCost::default();
        assert_eq!(c1.cost(&plan).unwrap(), c1.cost(&plan).unwrap());
        let mut c2 = CombinedModelCost::paper_default();
        assert_eq!(c2.cost(&plan).unwrap(), c2.cost(&plan).unwrap());
        let mut c3 = SimCyclesCost::opteron();
        assert_eq!(c3.cost(&plan).unwrap(), c3.cost(&plan).unwrap());
        let mut c4 = FusedTrafficCost::default();
        assert_eq!(c4.cost(&plan).unwrap(), c4.cost(&plan).unwrap());
    }

    #[test]
    fn fused_traffic_rewards_fusable_schedules() {
        // Same plan, same instructions — the only difference between the
        // backends is whether the executor's fusion collapses sweeps, so
        // the fusion-off policy must cost strictly more at a size where
        // the schedule fuses.
        let plan = Plan::iterative(18).unwrap();
        let mut on = FusedTrafficCost::default();
        let mut off = FusedTrafficCost::with_policy(FusionPolicy::disabled());
        assert!(on.cost(&plan).unwrap() < off.cost(&plan).unwrap());
        // An unbounded budget makes one vector-sized tile, which cannot be
        // cache-resident: the model must charge it the unfused traffic,
        // not a single sweep. (Re-codeleting pinned off on both sides —
        // it legitimately merges the unbounded unit's parts, which is a
        // *real* sweep reduction, not the fusion identity this pins.)
        let no_recodelet = ExecPolicy::from_env().with_recodelet(RecodeletPolicy::disabled());
        let mut unbounded =
            FusedTrafficCost::with_exec(no_recodelet.with_fusion(FusionPolicy::unbounded()));
        let mut off_plain =
            FusedTrafficCost::with_exec(no_recodelet.with_fusion(FusionPolicy::disabled()));
        assert_eq!(
            unbounded.cost(&plan).unwrap(),
            off_plain.cost(&plan).unwrap(),
            "non-resident tiles stream once per factor, exactly like no fusion"
        );
        // And under one policy, a factor list with fewer unfusable
        // large-stride passes streams less: blocked-8 beats all-radix-2
        // past the budget.
        let blocked = Plan::binary_iterative(18, 8).unwrap();
        let mut c = FusedTrafficCost::default();
        assert!(c.cost(&blocked).unwrap() < c.cost(&plan).unwrap());
    }

    #[test]
    fn fused_traffic_learns_the_vector_width() {
        let plan = Plan::iterative(18).unwrap();
        let policy = FusionPolicy::default();
        let mut simd = FusedTrafficCost::with_backends(policy, SimdPolicy::auto());
        let mut scalar = FusedTrafficCost::with_backends(policy, SimdPolicy::disabled());
        assert_eq!(simd.simd_lanes, wht_core::lane_width::<f64>());
        assert_eq!(scalar.simd_lanes, 1);
        // The lane backend retires the leaf work W columns at a time, so
        // the modelled cost must drop — but only the leaf-work share of
        // it: bookkeeping and traffic are backend-invariant, so the
        // SIMD cost stays well above total/W.
        let c_simd = simd.cost(&plan).unwrap();
        let c_scalar = scalar.cost(&plan).unwrap();
        assert!(c_simd < c_scalar);
        assert!(c_simd > c_scalar / simd.simd_lanes as f64);
        // Under SIMD the ALU term shrinks, so traffic weighs relatively
        // more: the cost ratio between the fusion-off and fusion-on
        // executors must widen when the ranking model knows the executor
        // is vectorized. Re-codeleting is pinned off on all four sides so
        // the compared schedules differ *only* in traffic: recodelet
        // rewrites the factor list (it merges the narrow head into one
        // wide codelet at s = 1, which a lone transform runs at scalar
        // width), and that leaf-term change is a different — separately
        // tested — signal from the one this assertion isolates.
        let no_rc = |fusion: FusionPolicy, simd: SimdPolicy| {
            FusedTrafficCost::with_exec(
                ExecPolicy::default()
                    .with_fusion(fusion)
                    .with_simd(simd)
                    .with_recodelet(RecodeletPolicy::disabled()),
            )
        };
        let c_simd_rc = no_rc(policy, SimdPolicy::auto()).cost(&plan).unwrap();
        let c_scalar_rc = no_rc(policy, SimdPolicy::disabled()).cost(&plan).unwrap();
        let simd_ratio = no_rc(FusionPolicy::disabled(), SimdPolicy::auto())
            .cost(&plan)
            .unwrap()
            / c_simd_rc;
        let scalar_ratio = no_rc(FusionPolicy::disabled(), SimdPolicy::disabled())
            .cost(&plan)
            .unwrap()
            / c_scalar_rc;
        assert!(
            simd_ratio > scalar_ratio,
            "traffic must weigh relatively more under SIMD \
             ({simd_ratio:.3} vs {scalar_ratio:.3})"
        );
    }

    #[test]
    fn fused_traffic_scores_relayout_as_two_sweeps_for_the_tail() {
        // n = 20 with the default 2^17 fusion budget: the fused head is
        // one resident sweep and the 3-pass tail sweeps three more times.
        // An eager relayout collapses the tail to its two transpose
        // sweeps, so the modeled traffic must drop by exactly one
        // vector sweep — and relayout must never be picked where it
        // cannot win (the schedule itself declines short tails).
        let plan = Plan::iterative(20).unwrap();
        let fusion = FusionPolicy::default();
        // Tail re-codeleting pinned off on both sides: it changes the
        // leaf-work term (that's its point — asserted below), and this
        // test isolates the traffic charge.
        let base = ExecPolicy::default()
            .with_fusion(fusion)
            .with_recodelet(RecodeletPolicy::disabled());
        let mut in_place =
            FusedTrafficCost::with_exec(base.with_relayout(RelayoutPolicy::disabled()));
        let mut relaid = FusedTrafficCost::with_exec(
            base.with_relayout(RelayoutPolicy::eager(RelayoutPolicy::DEFAULT_BUDGET_ELEMS)),
        );
        let c_in_place = in_place.cost(&plan).unwrap();
        let c_relaid = relaid.cost(&plan).unwrap();
        let sweep = relaid.weights.traffic * (2 * (1usize << 20)) as f64;
        assert!(
            (c_in_place - c_relaid - sweep).abs() < 1e-6,
            "tail of 3 sweeps -> 2 transpose sweeps must save exactly one \
             ({c_in_place} vs {c_relaid})"
        );
        // Re-codeleting the relayouted tail merges its chained factors,
        // shrinking the leaf-work term (fewer load/store passes over the
        // scratch) while traffic is unchanged — the generic scoring sees
        // the stage because it scores the lowered factor list.
        let mut recodeleted = FusedTrafficCost::with_exec(
            base.with_relayout(RelayoutPolicy::eager(RelayoutPolicy::DEFAULT_BUDGET_ELEMS))
                .with_recodelet(RecodeletPolicy::default()),
        );
        assert!(
            recodeleted.cost(&plan).unwrap() < c_relaid,
            "the ranking model must see the re-codeleted tail's saved μops"
        );
        // A 2-pass tail (n = 19) is break-even under the 2-sweep charge,
        // and the default policy (min_passes = 3) declines to rewrite it
        // at all — so the two executors and their modeled costs coincide
        // and plan ranking cannot flip on a non-win.
        let plan19 = Plan::iterative(19).unwrap();
        let a = in_place.cost(&plan19).unwrap();
        let b = relaid.cost(&plan19).unwrap();
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        assert!(!CompiledPlan::compile_fused(&plan19, &fusion)
            .relayout(&RelayoutPolicy::eager(RelayoutPolicy::DEFAULT_BUDGET_ELEMS))
            .has_relayout());
    }

    #[test]
    fn fused_traffic_scores_batched_execution_below_per_row() {
        // Small n, SIMD on: the narrow head passes (s < W) throttle the
        // single-transform leaf term, and the batched transposed domain
        // runs every pass at full width — so a big batch must score
        // strictly below rows independent transforms whenever the
        // lowered schedule carries an engaged batch product.
        let plan = Plan::iterative(8).unwrap();
        let exec = ExecPolicy::default().with_simd(SimdPolicy::auto());
        let single = FusedTrafficCost::with_exec(exec).cost(&plan).unwrap();
        let rows = 64;
        let batched = FusedTrafficCost::with_exec(exec)
            .with_batch_rows(rows)
            .cost(&plan)
            .unwrap();
        assert!(
            batched < rows as f64 * single,
            "64-row batch must beat 64 per-row transforms \
             ({batched} vs {} = 64 x {single})",
            rows as f64 * single
        );
        // The knob the Planner tunes from this: a disabled batch stage
        // scores exactly rows x the single-transform cost — no product,
        // no discount.
        let off = exec.with_batch(BatchPolicy::disabled());
        assert_eq!(
            FusedTrafficCost::with_exec(off)
                .with_batch_rows(rows)
                .cost(&plan)
                .unwrap(),
            rows as f64 * FusedTrafficCost::with_exec(off).cost(&plan).unwrap()
        );
        // Below the engagement threshold (block_rows.max(W)) the executor
        // replays per row, and the model must agree exactly — a 1-row
        // "batch" in particular is neutral.
        for small in [1usize, 8] {
            assert!(small < BatchPolicy::DEFAULT_BLOCK_ROWS.max(lane_width::<f64>()));
            assert_eq!(
                FusedTrafficCost::with_exec(exec)
                    .with_batch_rows(small)
                    .cost(&plan)
                    .unwrap(),
                small as f64 * single
            );
        }
        // Past the batch stage's size cap no product is built, so the
        // batched score degenerates to per-row there too.
        let big = Plan::iterative(19).unwrap();
        assert_eq!(
            FusedTrafficCost::with_exec(exec)
                .with_batch_rows(rows)
                .cost(&big)
                .unwrap(),
            rows as f64 * FusedTrafficCost::with_exec(exec).cost(&big).unwrap()
        );
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            InstructionCost::default().name(),
            CombinedModelCost::paper_default().name(),
            SimCyclesCost::opteron().name(),
            WallClockCost::default().name(),
            FusedTrafficCost::default().name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn sim_cycles_cost_is_order_independent() {
        // cost(A); cost(B) must equal cost(B); cost(A): evaluation order
        // leaking simulator state between plans would silently bias every
        // search that uses this backend.
        let a = Plan::right_recursive(12).unwrap();
        let b = Plan::left_recursive(12).unwrap();

        let mut ab = SimCyclesCost::opteron();
        let a_first = ab.cost(&a).unwrap();
        let b_second = ab.cost(&b).unwrap();

        let mut ba = SimCyclesCost::opteron();
        let b_first = ba.cost(&b).unwrap();
        let a_second = ba.cost(&a).unwrap();

        assert_eq!(a_first, a_second, "cost(A) depends on evaluation order");
        assert_eq!(b_first, b_second, "cost(B) depends on evaluation order");
        // And re-evaluating on a warm backend changes nothing either.
        assert_eq!(ab.cost(&a).unwrap(), a_first);
    }

    #[test]
    fn combined_cost_orders_cache_hostile_plans_last() {
        let n = 16;
        let mut c = CombinedModelCost::paper_default();
        let rr = c.cost(&Plan::right_recursive(n).unwrap()).unwrap();
        let lr = c.cost(&Plan::left_recursive(n).unwrap()).unwrap();
        assert!(lr > rr);
    }

    /// `cost` must equal the vector's weighted collapse for every vector
    /// backend under every objective — scalar searches and provenance
    /// stamping may never disagree.
    #[test]
    fn vector_collapse_matches_scalar_cost() {
        fn check<C: VectorCost>(mut c: C) {
            let plan = Plan::iterative(14).unwrap();
            for obj in CostObjective::ALL {
                c.set_objective(obj);
                let v = c.cost_vector(&plan).unwrap();
                let s = c.cost(&plan).unwrap();
                assert_eq!(v.weighted(), s, "{} under {}", c.name(), obj.name());
                assert_eq!(v.0.len(), CostVec::LEN);
                let terms = c.cost_terms(&plan).unwrap().expect("vector backend");
                assert_eq!(terms, v);
            }
        }
        check(InstructionCost::default());
        check(CombinedModelCost::paper_default());
        check(FusedTrafficCost::default());
    }

    /// Defaults are unchanged by the vector layer: the instruction backend
    /// still returns the plain count, the combined backend the paper
    /// blend, the traffic backend the work + 4·traffic collapse.
    #[test]
    fn default_weights_reproduce_legacy_costs() {
        let plan = Plan::iterative(12).unwrap();
        let mut i = InstructionCost::default();
        assert_eq!(
            i.cost(&plan).unwrap(),
            instruction_count(&plan, &CostModel::default()) as f64
        );
        let mut f = FusedTrafficCost::default();
        let v = f.cost_vector(&plan).unwrap();
        assert_eq!(f.cost(&plan).unwrap(), v.work() + 4.0 * v.traffic());
    }

    /// Objectives are real policy changes: under the fused-traffic backend
    /// the memory objective scores a plan by streamed elements alone.
    #[test]
    fn objectives_reweight_the_same_terms() {
        let plan = Plan::iterative(18).unwrap();
        let mut c = FusedTrafficCost::default();
        let v = c.cost_vector(&plan).unwrap();
        c.set_objective(CostObjective::Memory);
        assert_eq!(c.cost(&plan).unwrap(), v.traffic());
        c.set_objective(CostObjective::BatchThroughput);
        assert_eq!(c.cost(&plan).unwrap(), v.lane_work() + 4.0 * v.traffic());
        c.set_objective(CostObjective::Latency);
        assert_eq!(c.cost(&plan).unwrap(), v.weighted());
    }

    /// The invocation-scaled composition bound must never exceed the true
    /// cost of the composed split it bounds (B&B soundness for the
    /// backends that advertise it).
    #[test]
    fn compose_lower_bound_is_sound() {
        fn check<C: PlanCost>(mut c: C) {
            for m in 3..=10u32 {
                for c1 in 1..m {
                    let c2 = m - c1;
                    let best1 = Plan::right_recursive(c1).unwrap();
                    let best2 = Plan::right_recursive(c2).unwrap();
                    let parts = [(c1, c.cost(&best1).unwrap()), (c2, c.cost(&best2).unwrap())];
                    let Some(lb) = c.compose_lower_bound(m, &parts) else {
                        panic!("{} should advertise a bound", c.name());
                    };
                    let split = Plan::split(vec![best1, best2]).unwrap();
                    let actual = c.cost(&split).unwrap();
                    assert!(
                        lb <= actual + 1e-9,
                        "{}: lb {lb} > actual {actual} at m={m}, c1={c1}",
                        c.name()
                    );
                }
            }
        }
        check(InstructionCost::default());
        check(CombinedModelCost::paper_default());
        // And the fusion-aware backend must *not* advertise one.
        assert!(FusedTrafficCost::default()
            .compose_lower_bound(4, &[(2, 1.0), (2, 1.0)])
            .is_none());
    }
}
