//! Cost functions the searchers can optimize.
//!
//! The WHT package searches by *empirical runtime*; the paper's point is
//! that *model* costs (computable without running) can stand in for much of
//! that search. Both are [`PlanCost`] implementations here, so every search
//! strategy works with either backend.

use wht_cachesim::Hierarchy;
use wht_core::{Plan, WhtError};
use wht_measure::{simulated_cycles, time_plan, SimMachine, TimingConfig};
use wht_models::{analytic_misses, instruction_count, CostModel, ModelCache};

/// A (possibly stateful) cost function over plans; smaller is better.
pub trait PlanCost {
    /// Evaluate one plan.
    ///
    /// # Errors
    /// Backend-specific failures (e.g. invalid timing configuration).
    fn cost(&mut self, plan: &Plan) -> Result<f64, WhtError>;

    /// Human-readable backend name, used in experiment logs.
    fn name(&self) -> &'static str;
}

/// The instruction-count model (context-free: the unique cost backend for
/// which dynamic programming is *exact*).
#[derive(Debug, Clone, Default)]
pub struct InstructionCost {
    /// Abstract machine weights.
    pub cost_model: CostModel,
}

impl PlanCost for InstructionCost {
    fn cost(&mut self, plan: &Plan) -> Result<f64, WhtError> {
        Ok(instruction_count(plan, &self.cost_model) as f64)
    }

    fn name(&self) -> &'static str {
        "instruction-model"
    }
}

/// The paper's combined model `alpha*I + beta*M` with analytic misses.
#[derive(Debug, Clone)]
pub struct CombinedModelCost {
    /// Abstract machine weights for `I`.
    pub cost_model: CostModel,
    /// Direct-mapped model cache for `M`.
    pub cache: ModelCache,
    /// Weight on instructions.
    pub alpha: f64,
    /// Weight on misses.
    pub beta: f64,
}

impl CombinedModelCost {
    /// The paper's optimum (`alpha = 1, beta = 0.05`) against the Opteron
    /// L1-sized model cache.
    pub fn paper_default() -> Self {
        CombinedModelCost {
            cost_model: CostModel::default(),
            cache: ModelCache::opteron_l1_elems(),
            alpha: 1.0,
            beta: 0.05,
        }
    }
}

impl PlanCost for CombinedModelCost {
    fn cost(&mut self, plan: &Plan) -> Result<f64, WhtError> {
        let i = instruction_count(plan, &self.cost_model) as f64;
        let m = analytic_misses(plan, self.cache) as f64;
        Ok(self.alpha * i + self.beta * m)
    }

    fn name(&self) -> &'static str {
        "combined-model"
    }
}

/// Deterministic simulated cycles on the reference Opteron (trace-driven:
/// much more expensive than the models, noise-free unlike the wall clock).
#[derive(Debug)]
pub struct SimCyclesCost {
    /// Abstract machine weights.
    pub cost_model: CostModel,
    /// Latency parameters.
    pub machine: SimMachine,
    hierarchy: Hierarchy,
}

impl SimCyclesCost {
    /// Simulated cycles on the paper's Opteron hierarchy.
    pub fn opteron() -> Self {
        SimCyclesCost {
            cost_model: CostModel::default(),
            machine: SimMachine::default(),
            hierarchy: Hierarchy::opteron(),
        }
    }
}

impl PlanCost for SimCyclesCost {
    fn cost(&mut self, plan: &Plan) -> Result<f64, WhtError> {
        // Cold-start the hierarchy *here*, not only inside the trace:
        // this backend's contract is that cost(plan) is a pure function
        // of the plan, so no simulator state (resident lines or counters)
        // may leak from one evaluation into the next whatever the callee
        // does. Regression-tested below (cost order must not matter).
        self.hierarchy.reset();
        Ok(simulated_cycles(
            plan,
            &self.cost_model,
            &self.machine,
            &mut self.hierarchy,
        ))
    }

    fn name(&self) -> &'static str {
        "sim-cycles"
    }
}

/// Median wall-clock nanoseconds (what the WHT package's own search uses).
#[derive(Debug, Clone, Default)]
pub struct WallClockCost {
    /// Timing methodology.
    pub timing: TimingConfig,
}

impl PlanCost for WallClockCost {
    fn cost(&mut self, plan: &Plan) -> Result<f64, WhtError> {
        Ok(time_plan(plan, &self.timing)?.median_ns)
    }

    fn name(&self) -> &'static str {
        "wall-clock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_backends_are_deterministic() {
        let plan = Plan::right_recursive(10).unwrap();
        let mut c1 = InstructionCost::default();
        assert_eq!(c1.cost(&plan).unwrap(), c1.cost(&plan).unwrap());
        let mut c2 = CombinedModelCost::paper_default();
        assert_eq!(c2.cost(&plan).unwrap(), c2.cost(&plan).unwrap());
        let mut c3 = SimCyclesCost::opteron();
        assert_eq!(c3.cost(&plan).unwrap(), c3.cost(&plan).unwrap());
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            InstructionCost::default().name(),
            CombinedModelCost::paper_default().name(),
            SimCyclesCost::opteron().name(),
            WallClockCost::default().name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn sim_cycles_cost_is_order_independent() {
        // cost(A); cost(B) must equal cost(B); cost(A): evaluation order
        // leaking simulator state between plans would silently bias every
        // search that uses this backend.
        let a = Plan::right_recursive(12).unwrap();
        let b = Plan::left_recursive(12).unwrap();

        let mut ab = SimCyclesCost::opteron();
        let a_first = ab.cost(&a).unwrap();
        let b_second = ab.cost(&b).unwrap();

        let mut ba = SimCyclesCost::opteron();
        let b_first = ba.cost(&b).unwrap();
        let a_second = ba.cost(&a).unwrap();

        assert_eq!(a_first, a_second, "cost(A) depends on evaluation order");
        assert_eq!(b_first, b_second, "cost(B) depends on evaluation order");
        // And re-evaluating on a warm backend changes nothing either.
        assert_eq!(ab.cost(&a).unwrap(), a_first);
    }

    #[test]
    fn combined_cost_orders_cache_hostile_plans_last() {
        let n = 16;
        let mut c = CombinedModelCost::paper_default();
        let rr = c.cost(&Plan::right_recursive(n).unwrap()).unwrap();
        let lr = c.cost(&Plan::left_recursive(n).unwrap()).unwrap();
        assert!(lr > rr);
    }
}
