//! Hermetic fault-injection layer for the wisdom store's IO path.
//!
//! The crash-safety claims of [`crate::store`] are only worth anything if
//! every failure path is actually exercised. This module provides **named
//! failpoints**: the store's IO helpers call [`check`] at each step
//! (`atomic::create`, `atomic::write`, `atomic::fsync`, `atomic::rename`,
//! `atomic::dir_fsync`), and a test — or the `WHT_FAILPOINTS` environment
//! knob — can arm a [`Fault`] at any site:
//!
//! - [`Fault::Err`] — the operation fails gracefully (ENOSPC-style): the
//!   caller sees a [`wht_core::WhtError::Io`] and its cleanup runs.
//! - [`Fault::ShortWrite`]`(b)` — only the first `b` bytes reach the file
//!   before the write errors; cleanup still runs.
//! - [`Fault::Kill`] — a simulated crash *at* the operation: the op does
//!   not happen, **no cleanup runs**, whatever is on disk stays on disk.
//! - [`Fault::KillAtByte`]`(b)` — a simulated crash mid-write: the first
//!   `b` bytes are persisted, then the process "dies" (no cleanup).
//!
//! ## Arming
//!
//! **API** (hermetic, thread-local): [`arm`] returns a guard; the fault
//! fires on this thread only, for every hit while the guard lives. Arming
//! also opens a [`scope`], which *suppresses* environment-armed faults on
//! this thread — so a test matrix stays deterministic even when the CI
//! leg arms the environment.
//!
//! **Environment**: `WHT_FAILPOINTS="site=fault[;site=fault...]"` where
//! `fault` is `err`, `kill`, `short@N`, or `kill@N`. Malformed specs
//! panic at first use, matching the [`wht_core::env`] knob contract
//! (silently ignoring a typo'd injection spec would un-arm the CI fault
//! leg with no signal). The CI gate test asserts the parsed spec matches
//! the raw environment and that an armed site actually injects.
//!
//! ## Cost when disarmed
//!
//! [`check`] is two relaxed atomic loads when nothing has ever been
//! armed — no allocation, no lock, no map lookup. There are no external
//! dependencies; the whole layer is this file.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// What an armed failpoint injects when hit (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The operation fails gracefully; caller cleanup runs.
    Err,
    /// Simulated crash at the operation: not performed, no cleanup.
    Kill,
    /// Only the first `n` bytes are written, then a graceful error.
    ShortWrite(usize),
    /// The first `n` bytes are written, then a simulated crash.
    KillAtByte(usize),
}

impl Fault {
    /// `true` for the crash-simulating variants, whose aftermath must be
    /// left on disk exactly as a dead process would leave it.
    pub fn is_kill(self) -> bool {
        matches!(self, Fault::Kill | Fault::KillAtByte(_))
    }
}

/// Fast-path gate: `false` until the environment spec is non-empty or an
/// API guard arms a site. Never reset — staying `true` after the last
/// guard drops costs one thread-local lookup per hit, only in processes
/// that injected at least once (i.e. tests).
static ANY_ARMED: AtomicBool = AtomicBool::new(false);

/// The parsed `WHT_FAILPOINTS` spec, read once per process.
static ENV_TABLE: OnceLock<Vec<(String, Fault)>> = OnceLock::new();

thread_local! {
    /// API-armed faults on this thread, innermost last.
    static LOCAL: RefCell<Vec<(String, Fault)>> = const { RefCell::new(Vec::new()) };
    /// Open scopes on this thread; any open scope suppresses the
    /// environment table here (hermetic test isolation).
    static SCOPE_DEPTH: Cell<usize> = const { Cell::new(0) };
}

fn env_table() -> &'static [(String, Fault)] {
    ENV_TABLE.get_or_init(|| {
        let spec = std::env::var("WHT_FAILPOINTS").unwrap_or_default();
        let table = parse_spec(&spec).unwrap_or_else(|e| panic!("WHT_FAILPOINTS: {e}"));
        if !table.is_empty() {
            ANY_ARMED.store(true, Ordering::SeqCst);
        }
        table
    })
}

/// Parse a `site=fault[;site=fault...]` spec. Empty input (or input of
/// only separators) is the empty table.
///
/// # Errors
/// A message naming the malformed clause.
pub fn parse_spec(spec: &str) -> Result<Vec<(String, Fault)>, String> {
    let mut table = Vec::new();
    for clause in spec.split(';') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let (site, fault) = clause
            .split_once('=')
            .ok_or_else(|| format!("clause {clause:?} is not site=fault"))?;
        let site = site.trim();
        if site.is_empty() {
            return Err(format!("clause {clause:?} has an empty site"));
        }
        table.push((site.to_string(), parse_fault(fault.trim())?));
    }
    Ok(table)
}

fn parse_fault(raw: &str) -> Result<Fault, String> {
    let byte_arg = |prefix: &str| -> Result<usize, String> {
        raw[prefix.len()..]
            .parse()
            .map_err(|_| format!("fault {raw:?}: byte count must be an unsigned integer"))
    };
    match raw {
        "err" => Ok(Fault::Err),
        "kill" => Ok(Fault::Kill),
        _ if raw.starts_with("short@") => Ok(Fault::ShortWrite(byte_arg("short@")?)),
        _ if raw.starts_with("kill@") => Ok(Fault::KillAtByte(byte_arg("kill@")?)),
        _ => Err(format!(
            "unknown fault {raw:?} (expected err | kill | short@N | kill@N)"
        )),
    }
}

/// Guard returned by [`arm`]: the fault fires on this thread while the
/// guard lives, and environment-armed faults are suppressed here.
#[must_use = "the fault disarms when the guard drops"]
#[derive(Debug)]
pub struct Armed {
    _scope: Scope,
}

impl Drop for Armed {
    fn drop(&mut self) {
        LOCAL.with(|l| {
            l.borrow_mut().pop();
        });
    }
}

/// Guard returned by [`scope`]: while it lives, this thread ignores
/// environment-armed faults (API-armed ones still fire).
#[must_use = "the scope closes when the guard drops"]
#[derive(Debug)]
pub struct Scope(());

impl Drop for Scope {
    fn drop(&mut self) {
        SCOPE_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Isolate this thread from environment-armed faults until the returned
/// guard drops. Test matrices wrap themselves in a scope so an armed CI
/// environment cannot perturb their schedules.
pub fn scope() -> Scope {
    SCOPE_DEPTH.with(|d| d.set(d.get() + 1));
    Scope(())
}

/// Arm `fault` at `site` on this thread until the returned guard drops.
/// Nested arms at the same site: the innermost wins.
pub fn arm(site: &str, fault: Fault) -> Armed {
    let scope = scope();
    LOCAL.with(|l| l.borrow_mut().push((site.to_string(), fault)));
    ANY_ARMED.store(true, Ordering::SeqCst);
    Armed { _scope: scope }
}

/// The fault armed at `site` for this call, if any: API arms first
/// (innermost wins), then — outside any [`scope`] — the environment
/// table (last matching clause wins). The injection sites of the store's
/// IO path call this once per operation.
pub fn check(site: &str) -> Option<Fault> {
    // Ensure an environment spec has been parsed (and ANY_ARMED raised)
    // before consulting the fast-path gate.
    let env = env_table();
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let (local_hit, scoped) = LOCAL.with(|l| {
        let hit = l
            .borrow()
            .iter()
            .rev()
            .find(|(s, _)| s == site)
            .map(|&(_, f)| f);
        (hit, SCOPE_DEPTH.with(Cell::get) > 0)
    });
    if local_hit.is_some() {
        return local_hit;
    }
    if scoped {
        return None;
    }
    env.iter().rev().find(|(s, _)| s == site).map(|&(_, f)| f)
}

/// `true` when `WHT_FAILPOINTS` armed at least one site in this process —
/// what the CI fault leg's gate test asserts.
pub fn env_armed() -> bool {
    !env_table().is_empty()
}

/// The parsed environment spec (empty when unset) — exposed so the gate
/// test can probe every armed site end-to-end.
pub fn env_spec() -> &'static [(String, Fault)] {
    env_table()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_grammar_round_trips() {
        assert_eq!(parse_spec("").unwrap(), vec![]);
        assert_eq!(parse_spec(" ; ;").unwrap(), vec![]);
        let t = parse_spec("atomic::write=err;atomic::fsync=kill").unwrap();
        assert_eq!(t[0], ("atomic::write".to_string(), Fault::Err));
        assert_eq!(t[1], ("atomic::fsync".to_string(), Fault::Kill));
        assert_eq!(
            parse_spec("a=short@17").unwrap()[0].1,
            Fault::ShortWrite(17)
        );
        assert_eq!(parse_spec("a=kill@0").unwrap()[0].1, Fault::KillAtByte(0));
        assert!(parse_spec("nofault").is_err());
        assert!(parse_spec("=err").is_err());
        assert!(parse_spec("a=explode").is_err());
        assert!(parse_spec("a=short@x").is_err());
    }

    #[test]
    fn arm_is_scoped_and_thread_local() {
        assert_eq!(check("t::site"), None);
        {
            let _g = arm("t::site", Fault::Err);
            assert_eq!(check("t::site"), Some(Fault::Err));
            assert_eq!(check("t::other"), None);
            // Innermost arm wins.
            {
                let _g2 = arm("t::site", Fault::Kill);
                assert_eq!(check("t::site"), Some(Fault::Kill));
            }
            assert_eq!(check("t::site"), Some(Fault::Err));
            // Other threads are not affected.
            std::thread::spawn(|| assert_eq!(check("t::site"), None))
                .join()
                .unwrap();
        }
        assert_eq!(check("t::site"), None, "guard drop disarms");
    }

    #[test]
    fn kill_classification() {
        assert!(Fault::Kill.is_kill());
        assert!(Fault::KillAtByte(3).is_kill());
        assert!(!Fault::Err.is_kill());
        assert!(!Fault::ShortWrite(3).is_kill());
    }
}
