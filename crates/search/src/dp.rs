//! The WHT package's dynamic-programming autotuner.
//!
//! "the best algorithm determined by the dynamic programming search
//! performed by the WHT package in \[7\] (note that dynamic programming
//! serves only as a heuristic since the optimal algorithm depends on the
//! calling context)" — paper, Section 3.
//!
//! Bottom-up over sizes `1..=n`: the best plan of size `2^m` is the cheapest
//! of the leaf codelet (if `m <= max_leaf_k`) and every split
//! `split[best(n1), ..., best(nt)]` over compositions of `m` with at most
//! `max_parts` parts. The context-independence assumption is exactly the
//! package's (and is *exact* for the instruction-count model, which ignores
//! strides — tested against `wht-models::theory`).

use crate::cost::PlanCost;
use wht_core::{Plan, WhtError, MAX_LEAF_K};

/// Dynamic-programming search options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpOptions {
    /// Largest leaf codelet considered.
    pub max_leaf_k: u32,
    /// Largest split arity considered (2 = binary splits only, the common
    /// package configuration; larger values search more compositions).
    pub max_parts: usize,
}

impl Default for DpOptions {
    fn default() -> Self {
        DpOptions {
            max_leaf_k: MAX_LEAF_K,
            max_parts: 3,
        }
    }
}

impl DpOptions {
    /// Exhaustive composition arity (every `t` up to `n`): with a
    /// context-free cost this makes DP exact over the whole space.
    pub fn unbounded_parts() -> Self {
        DpOptions {
            max_leaf_k: MAX_LEAF_K,
            max_parts: usize::MAX,
        }
    }
}

/// Result of a DP search: the best plan per size, with costs.
#[derive(Debug, Clone)]
pub struct DpResult {
    /// `best[m]` for `m` in `1..=n` (`best[0]` is unused filler).
    pub best: Vec<Plan>,
    /// Cost of `best[m]` under the search's cost function.
    pub cost: Vec<f64>,
    /// Number of cost evaluations performed (the search's price).
    pub evaluations: usize,
}

impl DpResult {
    /// The best plan for the full size `n` the search was run at.
    pub fn best_plan(&self) -> &Plan {
        self.best.last().expect("non-empty")
    }

    /// Cost of the best full-size plan.
    pub fn best_cost(&self) -> f64 {
        *self.cost.last().expect("non-empty")
    }
}

/// Run the DP autotuner up to size `2^n` with the given cost backend.
///
/// # Errors
/// [`WhtError::InvalidConfig`] for `n == 0` or degenerate options;
/// propagates cost-function errors.
pub fn dp_search<C: PlanCost>(
    n: u32,
    opts: &DpOptions,
    cost_fn: &mut C,
) -> Result<DpResult, WhtError> {
    if n == 0 {
        return Err(WhtError::InvalidConfig("n must be >= 1".into()));
    }
    if opts.max_parts < 2 {
        return Err(WhtError::InvalidConfig("max_parts must be >= 2".into()));
    }
    let max_leaf = opts.max_leaf_k.clamp(1, MAX_LEAF_K);
    let mut best: Vec<Option<(Plan, f64)>> = vec![None; n as usize + 1];
    let mut evaluations = 0usize;

    for m in 1..=n {
        let mut candidate: Option<(Plan, f64)> = None;
        if m <= max_leaf {
            let leaf = Plan::Leaf { k: m };
            let c = cost_fn.cost(&leaf)?;
            evaluations += 1;
            candidate = Some((leaf, c));
        }
        if m >= 2 {
            let mut parts = Vec::new();
            let mut compositions = Vec::new();
            gen_compositions(m, opts.max_parts, &mut parts, &mut compositions);
            for comp in compositions {
                let children: Vec<Plan> = comp
                    .iter()
                    .map(|&p| best[p as usize].as_ref().expect("filled").0.clone())
                    .collect();
                let plan = Plan::split(children)?;
                let c = cost_fn.cost(&plan)?;
                evaluations += 1;
                if candidate.as_ref().is_none_or(|(_, bc)| c < *bc) {
                    candidate = Some((plan, c));
                }
            }
        }
        best[m as usize] =
            Some(candidate.ok_or_else(|| {
                WhtError::InvalidConfig(format!("no candidate plan for size 2^{m}"))
            })?);
    }

    let mut plans = Vec::with_capacity(n as usize + 1);
    let mut costs = Vec::with_capacity(n as usize + 1);
    plans.push(Plan::Leaf { k: 1 }); // index 0 filler
    costs.push(f64::NAN);
    for slot in best.iter_mut().skip(1) {
        let (p, c) = slot.take().expect("filled");
        plans.push(p);
        costs.push(c);
    }
    Ok(DpResult {
        best: plans,
        cost: costs,
        evaluations,
    })
}

/// All compositions of `m` into `2..=max_parts` parts (order significant).
fn gen_compositions(m: u32, max_parts: usize, prefix: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
    if prefix.len() >= 2 && prefix.iter().sum::<u32>() == m {
        out.push(prefix.clone());
        // continue: longer compositions may still exist — handled below.
    }
    let used: u32 = prefix.iter().sum();
    if prefix.len() >= max_parts || used >= m {
        return;
    }
    // Add one more part of every feasible size.
    for next in 1..=(m - used) {
        // Make sure at least one more part can follow unless this completes.
        let remaining = m - used - next;
        if remaining == 0 && prefix.is_empty() {
            continue; // single-part composition: not a split
        }
        prefix.push(next);
        gen_compositions(m, max_parts, prefix, out);
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CombinedModelCost, InstructionCost, SimCyclesCost};
    use wht_models::{instruction_count, instruction_extremes, CostModel};

    #[test]
    fn composition_generator_counts() {
        let mut prefix = Vec::new();
        let mut out = Vec::new();
        gen_compositions(4, usize::MAX, &mut prefix, &mut out);
        // Compositions of 4 with >= 2 parts: 2^3 - 1 = 7.
        assert_eq!(out.len(), 7);
        for c in &out {
            assert_eq!(c.iter().sum::<u32>(), 4);
            assert!(c.len() >= 2);
        }
        out.clear();
        gen_compositions(5, 2, &mut prefix, &mut out);
        // Binary compositions of 5: 4.
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn dp_exact_for_instruction_model() {
        // The instruction model is context-free, so unbounded DP must match
        // the exact theory minimum.
        let mut cost = InstructionCost::default();
        for n in 1..=12u32 {
            let dp = dp_search(n, &DpOptions::unbounded_parts(), &mut cost).unwrap();
            let ex = instruction_extremes(n, &CostModel::default(), 8).unwrap();
            assert_eq!(
                dp.best_cost() as u64,
                ex.min,
                "n={n}: DP {} vs theory {}",
                dp.best_cost(),
                ex.min
            );
        }
    }

    #[test]
    fn dp_beats_canonicals_under_its_own_cost() {
        let mut cost = CombinedModelCost::paper_default();
        let n = 16;
        let dp = dp_search(n, &DpOptions::default(), &mut cost).unwrap();
        for canonical in [
            Plan::iterative(n).unwrap(),
            Plan::right_recursive(n).unwrap(),
            Plan::left_recursive(n).unwrap(),
        ] {
            let c = cost.cost(&canonical).unwrap();
            assert!(
                dp.best_cost() <= c,
                "DP best {} should be <= {canonical} at {c}",
                dp.best_cost()
            );
        }
    }

    #[test]
    fn dp_best_uses_larger_base_cases() {
        // The paper: "The best algorithm utilizes larger base cases
        // (unrolled code) than used by the canonical algorithms."
        let mut cost = InstructionCost::default();
        let dp = dp_search(12, &DpOptions::default(), &mut cost).unwrap();
        let leaves = dp.best_plan().leaf_exponents();
        assert!(
            leaves.iter().all(|&k| k >= 2),
            "best plan {} should avoid small[1] leaves",
            dp.best_plan()
        );
    }

    #[test]
    fn per_size_table_is_usable() {
        let mut cost = InstructionCost::default();
        let dp = dp_search(8, &DpOptions::default(), &mut cost).unwrap();
        for m in 1..=8u32 {
            let plan = &dp.best[m as usize];
            assert_eq!(plan.n(), m);
            assert_eq!(
                dp.cost[m as usize] as u64,
                instruction_count(plan, &CostModel::default())
            );
        }
        assert!(dp.evaluations > 8);
    }

    #[test]
    fn sim_cycles_backend_works_end_to_end() {
        let mut cost = SimCyclesCost::opteron();
        let dp = dp_search(
            10,
            &DpOptions {
                max_parts: 2,
                ..DpOptions::default()
            },
            &mut cost,
        )
        .unwrap();
        assert_eq!(dp.best_plan().n(), 10);
        assert!(dp.best_cost() > 0.0);
    }

    #[test]
    fn invalid_options_rejected() {
        let mut cost = InstructionCost::default();
        assert!(dp_search(0, &DpOptions::default(), &mut cost).is_err());
        let bad = DpOptions {
            max_parts: 1,
            ..DpOptions::default()
        };
        assert!(dp_search(4, &bad, &mut cost).is_err());
    }
}
