//! The WHT package's dynamic-programming autotuner.
//!
//! "the best algorithm determined by the dynamic programming search
//! performed by the WHT package in \[7\] (note that dynamic programming
//! serves only as a heuristic since the optimal algorithm depends on the
//! calling context)" — paper, Section 3.
//!
//! Bottom-up over sizes `1..=n`: the best plan of size `2^m` is the cheapest
//! of the leaf codelet (if `m <= max_leaf_k`) and every split
//! `split[best(n1), ..., best(nt)]` over compositions of `m` with at most
//! `max_parts` parts. The context-independence assumption is exactly the
//! package's (and is *exact* for the instruction-count model, which ignores
//! strides — tested against `wht-models::theory`).
//!
//! `dp_search` evaluates **every** candidate in generation order — it is
//! the deliberately simple baseline the memoized branch-and-bound search
//! ([`crate::memo_search`]) is differentially tested against. Both pick
//! winners by the same deterministic tie-break: cost first, then earliest
//! candidate in canonical generation order (the leaf, if eligible, is
//! candidate 0; compositions follow in [`split_compositions`] order).

use crate::cost::PlanCost;
use wht_core::{Plan, WhtError, MAX_LEAF_K};

/// Dynamic-programming search options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpOptions {
    /// Largest leaf codelet considered. Must lie in `1..=MAX_LEAF_K`;
    /// out-of-range values are rejected (not clamped) — the strict-parse
    /// knob contract.
    pub max_leaf_k: u32,
    /// Largest split arity considered (2 = binary splits only, the common
    /// package configuration; larger values search more compositions).
    pub max_parts: usize,
}

impl Default for DpOptions {
    fn default() -> Self {
        DpOptions {
            max_leaf_k: MAX_LEAF_K,
            max_parts: 3,
        }
    }
}

impl DpOptions {
    /// Exhaustive composition arity (every `t` up to `n`): with a
    /// context-free cost this makes DP exact over the whole space.
    pub fn unbounded_parts() -> Self {
        DpOptions {
            max_leaf_k: MAX_LEAF_K,
            max_parts: usize::MAX,
        }
    }
}

/// Strict validation shared by `dp_search` and `memo_search`.
pub(crate) fn validate_search_args(n: u32, opts: &DpOptions) -> Result<(), WhtError> {
    if n == 0 {
        return Err(WhtError::InvalidConfig("n must be >= 1".into()));
    }
    if opts.max_parts < 2 {
        return Err(WhtError::InvalidConfig("max_parts must be >= 2".into()));
    }
    if opts.max_leaf_k == 0 || opts.max_leaf_k > MAX_LEAF_K {
        return Err(WhtError::InvalidConfig(format!(
            "max_leaf_k must be in 1..={MAX_LEAF_K}, got {}",
            opts.max_leaf_k
        )));
    }
    Ok(())
}

/// Result of a DP search: the best plan per size, with costs.
///
/// Sizes are `1..=n`; size 0 has no plan (there is no `2^0`-point
/// transform to factor), so the per-size accessors return `Option` and
/// there is **no** index-0 filler to trip over — the historical public
/// `cost[0] = NaN` sentinel is gone.
#[derive(Debug, Clone)]
pub struct DpResult {
    /// `table[m] = (best plan, cost)` for `m` in `1..=n`; `table[0]` is
    /// `None` by construction.
    table: Vec<Option<(Plan, f64)>>,
    evaluations: usize,
}

impl DpResult {
    /// Build from a solved table. Every slot in `1..=n` must be filled and
    /// slot 0 empty — guaranteed by both searches, checked here so the
    /// infallible accessors below stay honest.
    pub(crate) fn from_table(table: Vec<Option<(Plan, f64)>>, evaluations: usize) -> Self {
        debug_assert!(table.len() >= 2);
        debug_assert!(table[0].is_none());
        debug_assert!(table[1..].iter().all(Option::is_some));
        DpResult { table, evaluations }
    }

    /// The size exponent the search was run at.
    pub fn n(&self) -> u32 {
        (self.table.len() - 1) as u32
    }

    /// The best plan for size `2^m`, or `None` for `m == 0` / `m > n`.
    pub fn plan(&self, m: u32) -> Option<&Plan> {
        self.table
            .get(m as usize)
            .and_then(|slot| slot.as_ref().map(|(p, _)| p))
    }

    /// The cost of the best plan for size `2^m` under the search's cost
    /// function, or `None` for `m == 0` / `m > n`.
    pub fn cost(&self, m: u32) -> Option<f64> {
        self.table
            .get(m as usize)
            .and_then(|slot| slot.as_ref().map(|&(_, c)| c))
    }

    /// The best plan for the full size `n` the search was run at.
    pub fn best_plan(&self) -> &Plan {
        self.plan(self.n()).expect("filled by construction")
    }

    /// Cost of the best full-size plan.
    pub fn best_cost(&self) -> f64 {
        self.cost(self.n()).expect("filled by construction")
    }

    /// Number of cost evaluations performed (the search's price).
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Every solved size, smallest first: `(m, best plan, cost)`.
    pub fn entries(&self) -> impl Iterator<Item = (u32, &Plan, f64)> + '_ {
        self.table
            .iter()
            .enumerate()
            .filter_map(|(m, slot)| slot.as_ref().map(|(p, c)| (m as u32, p, *c)))
    }
}

/// Run the DP autotuner up to size `2^n` with the given cost backend.
///
/// # Errors
/// [`WhtError::InvalidConfig`] for `n == 0`, `max_parts < 2`, or
/// `max_leaf_k` outside `1..=MAX_LEAF_K`; propagates cost-function errors.
pub fn dp_search<C: PlanCost>(
    n: u32,
    opts: &DpOptions,
    cost_fn: &mut C,
) -> Result<DpResult, WhtError> {
    validate_search_args(n, opts)?;
    let mut best: Vec<Option<(Plan, f64)>> = vec![None; n as usize + 1];
    let mut evaluations = 0usize;

    for m in 1..=n {
        let mut candidate: Option<(Plan, f64)> = None;
        if m <= opts.max_leaf_k {
            let leaf = Plan::Leaf { k: m };
            let c = cost_fn.cost(&leaf)?;
            evaluations += 1;
            candidate = Some((leaf, c));
        }
        if m >= 2 {
            for comp in split_compositions(m, opts.max_parts) {
                let children: Vec<Plan> = comp
                    .iter()
                    .map(|&p| best[p as usize].as_ref().expect("filled").0.clone())
                    .collect();
                let plan = Plan::split(children)?;
                let c = cost_fn.cost(&plan)?;
                evaluations += 1;
                // Strict `<` on generation order = the (cost, earliest
                // candidate) tie-break memo_search implements explicitly.
                if candidate.as_ref().is_none_or(|(_, bc)| c < *bc) {
                    candidate = Some((plan, c));
                }
            }
        }
        best[m as usize] =
            Some(candidate.ok_or_else(|| {
                WhtError::InvalidConfig(format!("no candidate plan for size 2^{m}"))
            })?);
    }

    Ok(DpResult::from_table(best, evaluations))
}

/// All compositions of `m` into `2..=max_parts` ordered parts, in the
/// canonical generation order both searches share (lexicographic DFS:
/// first part smallest first, then recursively). Under unbounded parts
/// this is exactly the `2^(m-1) - 1` multi-part compositions of `m`
/// (property-tested in `tests/proptests.rs`).
pub fn split_compositions(m: u32, max_parts: usize) -> Vec<Vec<u32>> {
    let mut prefix = Vec::new();
    let mut out = Vec::new();
    gen_compositions(m, max_parts, &mut prefix, &mut out);
    out
}

fn gen_compositions(m: u32, max_parts: usize, prefix: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
    if prefix.len() >= 2 && prefix.iter().sum::<u32>() == m {
        out.push(prefix.clone());
        // continue: longer compositions may still exist — handled below.
    }
    let used: u32 = prefix.iter().sum();
    if prefix.len() >= max_parts || used >= m {
        return;
    }
    // Add one more part of every feasible size.
    for next in 1..=(m - used) {
        // Make sure at least one more part can follow unless this completes.
        let remaining = m - used - next;
        if remaining == 0 && prefix.is_empty() {
            continue; // single-part composition: not a split
        }
        prefix.push(next);
        gen_compositions(m, max_parts, prefix, out);
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CombinedModelCost, InstructionCost, SimCyclesCost};
    use wht_models::{instruction_count, instruction_extremes, CostModel};

    #[test]
    fn composition_generator_counts() {
        let out = split_compositions(4, usize::MAX);
        // Compositions of 4 with >= 2 parts: 2^3 - 1 = 7.
        assert_eq!(out.len(), 7);
        for c in &out {
            assert_eq!(c.iter().sum::<u32>(), 4);
            assert!(c.len() >= 2);
        }
        let out = split_compositions(5, 2);
        // Binary compositions of 5: 4.
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn dp_exact_for_instruction_model() {
        // The instruction model is context-free, so unbounded DP must match
        // the exact theory minimum.
        let mut cost = InstructionCost::default();
        for n in 1..=12u32 {
            let dp = dp_search(n, &DpOptions::unbounded_parts(), &mut cost).unwrap();
            let ex = instruction_extremes(n, &CostModel::default(), 8).unwrap();
            assert_eq!(
                dp.best_cost() as u64,
                ex.min,
                "n={n}: DP {} vs theory {}",
                dp.best_cost(),
                ex.min
            );
        }
    }

    #[test]
    fn dp_beats_canonicals_under_its_own_cost() {
        let mut cost = CombinedModelCost::paper_default();
        let n = 16;
        let dp = dp_search(n, &DpOptions::default(), &mut cost).unwrap();
        for canonical in [
            Plan::iterative(n).unwrap(),
            Plan::right_recursive(n).unwrap(),
            Plan::left_recursive(n).unwrap(),
        ] {
            let c = cost.cost(&canonical).unwrap();
            assert!(
                dp.best_cost() <= c,
                "DP best {} should be <= {canonical} at {c}",
                dp.best_cost()
            );
        }
    }

    #[test]
    fn dp_best_uses_larger_base_cases() {
        // The paper: "The best algorithm utilizes larger base cases
        // (unrolled code) than used by the canonical algorithms."
        let mut cost = InstructionCost::default();
        let dp = dp_search(12, &DpOptions::default(), &mut cost).unwrap();
        let leaves = dp.best_plan().leaf_exponents();
        assert!(
            leaves.iter().all(|&k| k >= 2),
            "best plan {} should avoid small[1] leaves",
            dp.best_plan()
        );
    }

    #[test]
    fn per_size_table_is_usable() {
        let mut cost = InstructionCost::default();
        let dp = dp_search(8, &DpOptions::default(), &mut cost).unwrap();
        assert_eq!(dp.n(), 8);
        for m in 1..=8u32 {
            let plan = dp.plan(m).unwrap();
            assert_eq!(plan.n(), m);
            assert_eq!(
                dp.cost(m).unwrap() as u64,
                instruction_count(plan, &CostModel::default())
            );
        }
        assert_eq!(dp.entries().count(), 8);
        assert!(dp.evaluations() > 8);
    }

    /// Regression (the `cost[0] = NaN` bug): size 0 has no entry at all —
    /// no NaN sentinel that poisons `<` comparisons, no panic, and every
    /// returned cost is finite.
    #[test]
    fn size_zero_has_no_entry_and_no_nan() {
        let mut cost = InstructionCost::default();
        let dp = dp_search(6, &DpOptions::default(), &mut cost).unwrap();
        assert!(dp.plan(0).is_none());
        assert!(dp.cost(0).is_none());
        assert!(dp.plan(7).is_none(), "beyond n is None, not a panic");
        assert!(dp.entries().all(|(_, _, c)| c.is_finite()));
        assert!(dp.entries().next().unwrap().0 == 1);
    }

    #[test]
    fn sim_cycles_backend_works_end_to_end() {
        let mut cost = SimCyclesCost::opteron();
        let dp = dp_search(
            10,
            &DpOptions {
                max_parts: 2,
                ..DpOptions::default()
            },
            &mut cost,
        )
        .unwrap();
        assert_eq!(dp.best_plan().n(), 10);
        assert!(dp.best_cost() > 0.0);
    }

    #[test]
    fn invalid_options_rejected() {
        let mut cost = InstructionCost::default();
        assert!(dp_search(0, &DpOptions::default(), &mut cost).is_err());
        let bad = DpOptions {
            max_parts: 1,
            ..DpOptions::default()
        };
        assert!(dp_search(4, &bad, &mut cost).is_err());
    }

    /// Regression (the silent-clamp bug): an out-of-range `max_leaf_k` is
    /// rejected with a typed `InvalidConfig`, not quietly clamped into
    /// `1..=MAX_LEAF_K` — a search that says "leaves up to 2^12" must not
    /// silently search a different space.
    #[test]
    fn out_of_range_max_leaf_k_rejected_not_clamped() {
        use wht_core::MAX_LEAF_K;
        let mut cost = InstructionCost::default();
        for bad_k in [0, MAX_LEAF_K + 1, 32] {
            let opts = DpOptions {
                max_leaf_k: bad_k,
                ..DpOptions::default()
            };
            match dp_search(4, &opts, &mut cost) {
                Err(WhtError::InvalidConfig(msg)) => {
                    assert!(msg.contains("max_leaf_k"), "unhelpful message: {msg}");
                }
                other => panic!("max_leaf_k={bad_k} must be InvalidConfig, got {other:?}"),
            }
        }
        // The boundary values themselves are legal.
        for good_k in [1, MAX_LEAF_K] {
            let opts = DpOptions {
                max_leaf_k: good_k,
                ..DpOptions::default()
            };
            assert!(dp_search(4, &opts, &mut cost).is_ok());
        }
    }
}
