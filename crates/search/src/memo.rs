//! Cascades-style memoized plan search with branch-and-bound pruning.
//!
//! [`dp_search`](crate::dp_search) re-evaluates every composed candidate
//! from scratch on every call. This module rebuilds the same bottom-up
//! search around a **memo table of groups** — the cascades framing from
//! optd, where a *group* is one subproblem (here: the factor span `2^m`)
//! holding its best plan, its cost, and the provenance of how it won:
//!
//! - **Memoization across searches.** A [`MemoTable`] outlives one call;
//!   `memo_search(n)` reuses every group a previous search (of any size,
//!   under the same backend and options) already solved, so a planner
//!   serving many sizes pays for each span once.
//! - **Branch-and-bound pruning.** Backends that implement
//!   [`PlanCost::compose_lower_bound`] give each composition a lower bound
//!   from its children's memoized best costs. Candidates are evaluated in
//!   ascending-bound order, and the moment the next bound exceeds the
//!   incumbent the whole remainder of the group is pruned unevaluated.
//! - **Identical answers.** The winner is chosen by the same deterministic
//!   tie-break as `dp_search` — cost first, then earliest candidate in
//!   canonical generation order (leaf = candidate 0, then
//!   [`split_compositions`] order) — and a pruned candidate's cost is
//!   *strictly* above the final incumbent by construction, so the best
//!   plan and cost match `dp_search` exactly whenever the advertised
//!   bound is sound (differentially tested in
//!   `tests/memo_differential.rs`).
//!
//! Backends with no sound bound (e.g. `FusedTrafficCost`, whose fusion
//! makes cost sub-additive) simply fall back to evaluating every
//! candidate — still memoized across sizes and searches.

use crate::cost::{CostVec, PlanCost};
use crate::dp::{split_compositions, validate_search_args, DpOptions, DpResult};
use wht_core::{Plan, WhtError};

/// How one group's winner was chosen — the planner's "explain" record.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupProvenance {
    /// The winning composition's part spans (`None`: the leaf codelet won).
    pub composition: Option<Vec<u32>>,
    /// Total candidates in the group (leaf, if eligible, + compositions).
    pub candidates: usize,
    /// Candidates actually cost-evaluated.
    pub evaluated: usize,
    /// Candidates discarded by the branch-and-bound lower bound without
    /// being evaluated.
    pub pruned: usize,
}

/// One solved subproblem: the best plan of span `2^m` under the table's
/// cost backend and options, with cost, optional term vector, and
/// provenance.
#[derive(Debug, Clone)]
pub struct Group {
    /// The winning plan.
    pub plan: Plan,
    /// Its (collapsed, scalar) cost.
    pub cost: f64,
    /// Its term vector, when the backend is vectored
    /// ([`PlanCost::cost_terms`]); `None` for scalar-only backends.
    pub terms: Option<CostVec>,
    /// How it won.
    pub provenance: GroupProvenance,
}

impl Group {
    /// One-line human-readable account of the choice.
    pub fn explain(&self, m: u32) -> String {
        let via = match &self.provenance.composition {
            Some(parts) => {
                let parts: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
                format!("split[{}]", parts.join(","))
            }
            None => "leaf".to_string(),
        };
        let mut line = format!(
            "2^{m}: cost={:.3} via {via}; evaluated {}/{} candidates ({} pruned)",
            self.cost,
            self.provenance.evaluated,
            self.provenance.candidates,
            self.provenance.pruned
        );
        if let Some(terms) = &self.terms {
            line.push_str("; ");
            line.push_str(&terms.explain());
        }
        line
    }
}

/// The memo: one [`Group`] per solved span, remembered across searches.
///
/// Groups are only valid for one (backend, [`DpOptions`]) context; a
/// `memo_search` under a different context resets the table. The backend
/// is identified by [`PlanCost::name`] — callers that mutate a backend's
/// weights in place (e.g. [`crate::VectorCost::set_weights`]) must call
/// [`MemoTable::clear`] themselves, since the name does not change
/// (`Planner` does this when its objective changes).
#[derive(Debug, Clone, Default)]
pub struct MemoTable {
    context: Option<(&'static str, DpOptions)>,
    /// `groups[m]` for span exponent `m`; index 0 stays empty.
    groups: Vec<Option<Group>>,
    evaluations: usize,
}

impl MemoTable {
    /// An empty table.
    pub fn new() -> Self {
        MemoTable::default()
    }

    /// Drop every group (e.g. after re-weighting the cost backend).
    pub fn clear(&mut self) {
        self.context = None;
        self.groups.clear();
        self.evaluations = 0;
    }

    /// The solved group for span `2^m`, if any.
    pub fn group(&self, m: u32) -> Option<&Group> {
        self.groups.get(m as usize).and_then(Option::as_ref)
    }

    /// The largest span exponent solved so far (0 = empty table).
    pub fn solved_n(&self) -> u32 {
        (self.groups.len().saturating_sub(1)) as u32
    }

    /// Total cost evaluations across every search this table served.
    pub fn total_evaluations(&self) -> usize {
        self.evaluations
    }

    fn ensure_context(&mut self, backend: &'static str, opts: &DpOptions) {
        if self.context != Some((backend, *opts)) {
            self.clear();
            self.context = Some((backend, *opts));
        }
    }
}

/// Result of one [`memo_search`] call: the winner plus this call's search
/// effort (the memo's cross-call totals live on the table).
#[derive(Debug, Clone)]
pub struct MemoResult {
    /// The size exponent searched.
    pub n: u32,
    /// Best plan for `2^n`.
    pub best: Plan,
    /// Its cost.
    pub cost: f64,
    /// Candidate cost evaluations performed by *this* call (provenance
    /// term-vector stamping — at most one `cost_terms` per newly solved
    /// group — is not counted).
    pub evaluations: usize,
    /// Candidates pruned unevaluated by the lower bound in this call.
    pub pruned: usize,
    /// Groups reused from previous searches instead of being solved.
    pub reused_groups: usize,
}

/// Memoized branch-and-bound search up to `2^n`; same contract and same
/// answer as [`dp_search`](crate::dp_search) (see the module docs), at a
/// fraction of the evaluations.
///
/// # Errors
/// [`WhtError::InvalidConfig`] for `n == 0`, `max_parts < 2`, or
/// `max_leaf_k` outside `1..=MAX_LEAF_K`; propagates cost-function errors.
pub fn memo_search<C: PlanCost>(
    n: u32,
    opts: &DpOptions,
    cost_fn: &mut C,
    memo: &mut MemoTable,
) -> Result<MemoResult, WhtError> {
    validate_search_args(n, opts)?;
    memo.ensure_context(cost_fn.name(), opts);
    if memo.groups.len() < n as usize + 1 {
        memo.groups.resize(n as usize + 1, None);
    }

    let mut evaluations = 0usize;
    let mut pruned_total = 0usize;
    let mut reused = 0usize;

    for m in 1..=n {
        if memo.groups[m as usize].is_some() {
            reused += 1;
            continue;
        }
        let group = solve_group(m, opts, cost_fn, memo, &mut evaluations, &mut pruned_total)?;
        memo.groups[m as usize] = Some(group);
    }

    memo.evaluations += evaluations;
    let top = memo.groups[n as usize].as_ref().expect("just solved");
    Ok(MemoResult {
        n,
        best: top.plan.clone(),
        cost: top.cost,
        evaluations,
        pruned: pruned_total,
        reused_groups: reused,
    })
}

/// Everything solved so far as a classic [`DpResult`] (per-size table).
/// `None` if any span in `1..=n` is unsolved. The result's evaluation
/// count is the table's cross-call total.
pub fn memo_to_dp_result(memo: &MemoTable, n: u32) -> Option<DpResult> {
    if n == 0 || memo.solved_n() < n {
        return None;
    }
    let mut table: Vec<Option<(Plan, f64)>> = vec![None; n as usize + 1];
    for m in 1..=n {
        let g = memo.group(m)?;
        table[m as usize] = Some((g.plan.clone(), g.cost));
    }
    Some(DpResult::from_table(table, memo.total_evaluations()))
}

/// One candidate: its lower bound, its canonical generation index, and
/// the composition behind it (`None` = leaf).
struct Candidate {
    bound: f64,
    index: usize,
    composition: Option<Vec<u32>>,
}

fn solve_group<C: PlanCost>(
    m: u32,
    opts: &DpOptions,
    cost_fn: &mut C,
    memo: &MemoTable,
    evaluations: &mut usize,
    pruned_total: &mut usize,
) -> Result<Group, WhtError> {
    // Enumerate the group's candidates with lower bounds. The leaf (when
    // eligible) is candidate 0 with an always-evaluate bound: it is the
    // cheapest evaluation and seeds the incumbent for pruning.
    let mut candidates = Vec::new();
    if m <= opts.max_leaf_k {
        candidates.push(Candidate {
            bound: f64::NEG_INFINITY,
            index: 0,
            composition: None,
        });
    }
    if m >= 2 {
        let mut parts_buf = Vec::new();
        for (i, comp) in split_compositions(m, opts.max_parts)
            .into_iter()
            .enumerate()
        {
            parts_buf.clear();
            for &c in &comp {
                let child = memo.group(c).expect("children solved bottom-up");
                parts_buf.push((c, child.cost));
            }
            // No advertised bound => never pruned (and, sorting below,
            // kept in generation order ahead of bounded candidates).
            let bound = cost_fn
                .compose_lower_bound(m, &parts_buf)
                .unwrap_or(f64::NEG_INFINITY);
            candidates.push(Candidate {
                bound,
                index: i + 1,
                composition: Some(comp),
            });
        }
    }
    let total = candidates.len();
    if total == 0 {
        return Err(WhtError::InvalidConfig(format!(
            "no candidate plan for size 2^{m}"
        )));
    }
    // Cheapest-possible first; generation order breaks bound ties so the
    // incumbent tightens deterministically.
    candidates.sort_by(|a, b| a.bound.total_cmp(&b.bound).then(a.index.cmp(&b.index)));

    let mut best: Option<(Plan, f64, usize)> = None;
    let mut evaluated = 0usize;
    let mut pruned = 0usize;
    for (pos, cand) in candidates.iter().enumerate() {
        if let Some((_, incumbent, _)) = &best {
            // Strictly above the incumbent: this candidate — and everything
            // after it in bound order — costs strictly more than the final
            // winner, so it can neither win nor tie. (`bound == incumbent`
            // still evaluates: an exact tie must fall to the earlier
            // generation index, which only an evaluation can establish.)
            if cand.bound > *incumbent {
                pruned = total - pos;
                break;
            }
        }
        let plan = match &cand.composition {
            None => Plan::Leaf { k: m },
            Some(comp) => {
                let children: Vec<Plan> = comp
                    .iter()
                    .map(|&c| memo.group(c).expect("solved").plan.clone())
                    .collect();
                Plan::split(children)?
            }
        };
        let c = cost_fn.cost(&plan)?;
        *evaluations += 1;
        evaluated += 1;
        let wins = match &best {
            None => true,
            // dp_search's tie-break, made explicit: cost, then earliest
            // canonical candidate.
            Some((_, bc, bi)) => c < *bc || (c == *bc && cand.index < *bi),
        };
        if wins {
            best = Some((plan, c, cand.index));
        }
    }
    *pruned_total += pruned;

    let (plan, cost, winner_index) = best.expect("at least one candidate evaluated");
    let composition = candidates
        .iter()
        .find(|c| c.index == winner_index)
        .and_then(|c| c.composition.clone());
    let terms = cost_fn.cost_terms(&plan)?;
    Ok(Group {
        plan,
        cost,
        terms,
        provenance: GroupProvenance {
            composition,
            candidates: total,
            evaluated,
            pruned,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CombinedModelCost, FusedTrafficCost, InstructionCost};
    use crate::dp::dp_search;

    #[test]
    fn memo_matches_dp_for_model_backends() {
        for opts in [DpOptions::default(), DpOptions::unbounded_parts()] {
            let mut dp_cost = CombinedModelCost::paper_default();
            let mut memo_cost = CombinedModelCost::paper_default();
            let mut memo = MemoTable::new();
            for n in 1..=10u32 {
                let dp = dp_search(n, &opts, &mut dp_cost).unwrap();
                let mm = memo_search(n, &opts, &mut memo_cost, &mut memo).unwrap();
                assert_eq!(mm.cost, dp.best_cost(), "n={n}");
                assert_eq!(mm.best, *dp.best_plan(), "n={n}");
            }
        }
    }

    #[test]
    fn memo_reuses_groups_across_searches() {
        let mut cost = InstructionCost::default();
        let mut memo = MemoTable::new();
        let first = memo_search(12, &DpOptions::default(), &mut cost, &mut memo).unwrap();
        assert!(first.evaluations > 0);
        assert_eq!(first.reused_groups, 0);
        // Same search again: every group is a memo hit.
        let again = memo_search(12, &DpOptions::default(), &mut cost, &mut memo).unwrap();
        assert_eq!(again.evaluations, 0);
        assert_eq!(again.reused_groups, 12);
        assert_eq!(again.best, first.best);
        // A *larger* search only solves the new spans.
        let bigger = memo_search(14, &DpOptions::default(), &mut cost, &mut memo).unwrap();
        assert_eq!(bigger.reused_groups, 12);
        assert!(bigger.evaluations < first.evaluations);
        // A smaller one is free.
        let smaller = memo_search(8, &DpOptions::default(), &mut cost, &mut memo).unwrap();
        assert_eq!(smaller.evaluations, 0);
    }

    #[test]
    fn context_change_resets_the_table() {
        let mut inst = InstructionCost::default();
        let mut memo = MemoTable::new();
        memo_search(8, &DpOptions::default(), &mut inst, &mut memo).unwrap();
        assert_eq!(memo.solved_n(), 8);
        // Different options: stale groups must not leak in.
        let narrow = DpOptions {
            max_parts: 2,
            ..DpOptions::default()
        };
        let r = memo_search(8, &narrow, &mut inst, &mut memo).unwrap();
        assert_eq!(r.reused_groups, 0);
        // Different backend (by name): reset again.
        let mut comb = CombinedModelCost::paper_default();
        let r = memo_search(8, &narrow, &mut comb, &mut memo).unwrap();
        assert_eq!(r.reused_groups, 0);
    }

    #[test]
    fn pruning_actually_prunes_for_bounded_backends() {
        let mut cost = CombinedModelCost::paper_default();
        let mut memo = MemoTable::new();
        let r = memo_search(16, &DpOptions::default(), &mut cost, &mut memo).unwrap();
        assert!(r.pruned > 0, "bounded backend should prune something");
        let mut dp_cost = CombinedModelCost::paper_default();
        let dp = dp_search(16, &DpOptions::default(), &mut dp_cost).unwrap();
        assert!(
            r.evaluations < dp.evaluations(),
            "memo {} vs dp {}",
            r.evaluations,
            dp.evaluations()
        );
    }

    #[test]
    fn unbounded_backend_degenerates_to_dp_evaluations() {
        // FusedTrafficCost advertises no composition bound, so the memo
        // search must evaluate exactly what dp does on a cold table —
        // memoization still pays on the second call.
        let opts = DpOptions::default();
        let mut memo_cost = FusedTrafficCost::default();
        let mut dp_cost = FusedTrafficCost::default();
        let mut memo = MemoTable::new();
        let r = memo_search(10, &opts, &mut memo_cost, &mut memo).unwrap();
        let dp = dp_search(10, &opts, &mut dp_cost).unwrap();
        assert_eq!(r.evaluations, dp.evaluations());
        assert_eq!(r.pruned, 0);
        assert_eq!(r.cost, dp.best_cost());
        assert_eq!(r.best, *dp.best_plan());
    }

    #[test]
    fn provenance_explains_the_choice() {
        let mut cost = InstructionCost::default();
        let mut memo = MemoTable::new();
        memo_search(10, &DpOptions::default(), &mut cost, &mut memo).unwrap();
        // Small spans: the leaf wins (candidate 0, no composition).
        let g2 = memo.group(2).unwrap();
        assert_eq!(g2.provenance.composition, None);
        // Past MAX_LEAF_K a split must win, its parts summing to the span.
        let g10 = memo.group(10).unwrap();
        let comp = g10.provenance.composition.as_ref().expect("split winner");
        assert_eq!(comp.iter().sum::<u32>(), 10);
        assert!(g10.provenance.evaluated + g10.provenance.pruned <= g10.provenance.candidates);
        // Vectored backend => terms stamped; the explain line mentions both.
        assert!(g10.terms.is_some());
        let line = g10.explain(10);
        assert!(line.contains("split["), "{line}");
        assert!(line.contains("weighted="), "{line}");
        // And the round-trip helper reproduces a classic per-size table.
        let dp = memo_to_dp_result(&memo, 10).unwrap();
        assert_eq!(dp.best_plan(), &g10.plan);
        assert!(memo_to_dp_result(&memo, 11).is_none());
    }

    #[test]
    fn memo_rejects_invalid_options() {
        let mut cost = InstructionCost::default();
        let mut memo = MemoTable::new();
        assert!(memo_search(0, &DpOptions::default(), &mut cost, &mut memo).is_err());
        let bad = DpOptions {
            max_leaf_k: 99,
            ..DpOptions::default()
        };
        assert!(memo_search(4, &bad, &mut cost, &mut memo).is_err());
    }
}
