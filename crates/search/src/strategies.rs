//! Exhaustive, random, and model-pruned search strategies.
//!
//! [`pruned_search`] is the paper's proposed application (Section 4/5):
//! sample algorithms, rank them by a cheap model computable from the plan
//! alone, and spend expensive measurements only on the fraction with the
//! smallest model values. "Thus for small transforms it is safe to ignore
//! algorithms which have a high instruction count and for large transforms
//! it is safe to ignore algorithms with a high value in the combined
//! instruction count/cache miss model."

use crate::cost::PlanCost;
use rand::Rng;
use wht_core::{Plan, WhtError};
use wht_space::{enumerate_plans, Sampler};

/// A plan with its evaluated cost.
#[derive(Debug, Clone)]
pub struct Ranked {
    /// The plan.
    pub plan: Plan,
    /// Its cost under the strategy's expensive backend.
    pub cost: f64,
}

/// Exhaustively evaluate every plan of size `2^n` (small `n` only; guarded
/// by `budget` like [`enumerate_plans`]). Returns the best.
///
/// # Errors
/// Budget/space errors from enumeration; cost-backend errors.
pub fn exhaustive_search<C: PlanCost>(
    n: u32,
    max_leaf_k: u32,
    budget: usize,
    cost_fn: &mut C,
) -> Result<Ranked, WhtError> {
    let plans = enumerate_plans(n, max_leaf_k, budget)?;
    let mut best: Option<Ranked> = None;
    for plan in plans {
        let cost = cost_fn.cost(&plan)?;
        if best.as_ref().is_none_or(|b| cost < b.cost) {
            best = Some(Ranked { plan, cost });
        }
    }
    best.ok_or_else(|| WhtError::InvalidConfig("empty space".into()))
}

/// Evaluate `samples` random plans (recursive split uniform) and return the
/// best.
///
/// # Errors
/// Sampler errors for bad `n`; cost-backend errors.
pub fn random_search<C: PlanCost, R: Rng + ?Sized>(
    n: u32,
    samples: usize,
    cost_fn: &mut C,
    rng: &mut R,
) -> Result<Ranked, WhtError> {
    if samples == 0 {
        return Err(WhtError::InvalidConfig("samples must be >= 1".into()));
    }
    let sampler = Sampler::default();
    let mut best: Option<Ranked> = None;
    for _ in 0..samples {
        let plan = sampler.sample(n, rng)?;
        let cost = cost_fn.cost(&plan)?;
        if best.as_ref().is_none_or(|b| cost < b.cost) {
            best = Some(Ranked { plan, cost });
        }
    }
    best.ok_or_else(|| WhtError::InvalidConfig("no samples".into()))
}

/// Outcome of a [`pruned_search`].
#[derive(Debug, Clone)]
pub struct PrunedSearchResult {
    /// Best plan among the survivors, under the expensive cost.
    pub best: Ranked,
    /// How many plans were sampled in total.
    pub sampled: usize,
    /// How many survived the model filter and were measured expensively.
    pub measured: usize,
    /// The model-value threshold that survivors were required to be under.
    pub model_threshold: f64,
}

/// The paper's pruning strategy: sample `samples` plans, score all with the
/// cheap `model`, keep the `keep_fraction` with the smallest model values,
/// and evaluate only those with the `expensive` backend.
///
/// # Errors
/// [`WhtError::InvalidConfig`] for a zero sample count or a fraction
/// outside `(0, 1]`; backend errors propagate.
pub fn pruned_search<M: PlanCost, E: PlanCost, R: Rng + ?Sized>(
    n: u32,
    samples: usize,
    keep_fraction: f64,
    model: &mut M,
    expensive: &mut E,
    rng: &mut R,
) -> Result<PrunedSearchResult, WhtError> {
    if samples == 0 {
        return Err(WhtError::InvalidConfig("samples must be >= 1".into()));
    }
    if !(keep_fraction > 0.0 && keep_fraction <= 1.0) {
        return Err(WhtError::InvalidConfig(
            "keep_fraction must be in (0, 1]".into(),
        ));
    }
    let sampler = Sampler::default();
    let mut scored: Vec<(f64, Plan)> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let plan = sampler.sample(n, rng)?;
        let score = model.cost(&plan)?;
        scored.push((score, plan));
    }
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite model values"));
    let keep = ((samples as f64 * keep_fraction).ceil() as usize).clamp(1, samples);
    let model_threshold = scored[keep - 1].0;

    let mut best: Option<Ranked> = None;
    for (_, plan) in scored.into_iter().take(keep) {
        let cost = expensive.cost(&plan)?;
        if best.as_ref().is_none_or(|b| cost < b.cost) {
            best = Some(Ranked { plan, cost });
        }
    }
    Ok(PrunedSearchResult {
        best: best.expect("keep >= 1"),
        sampled: samples,
        measured: keep,
        model_threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CombinedModelCost, InstructionCost, SimCyclesCost};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exhaustive_matches_theory_minimum() {
        let mut cost = InstructionCost::default();
        let best = exhaustive_search(6, 8, 1_000_000, &mut cost).unwrap();
        let ex = wht_models::instruction_extremes(6, &cost.cost_model, 8).unwrap();
        assert_eq!(best.cost as u64, ex.min);
    }

    #[test]
    fn random_search_finds_reasonable_plans() {
        let mut cost = InstructionCost::default();
        let mut rng = StdRng::seed_from_u64(11);
        let best = random_search(9, 300, &mut cost, &mut rng).unwrap();
        // Must at least beat the canonical iterative algorithm (which has
        // minimal instructions among canonicals but not globally).
        let mut c = InstructionCost::default();
        let iterative = c.cost(&Plan::iterative(9).unwrap()).unwrap();
        assert!(
            best.cost <= iterative * 1.05,
            "{} vs {iterative}",
            best.cost
        );
        assert_eq!(best.plan.n(), 9);
    }

    #[test]
    fn pruned_search_measures_only_a_fraction() {
        let mut model = InstructionCost::default();
        let mut expensive = SimCyclesCost::opteron();
        let mut rng = StdRng::seed_from_u64(5);
        let res = pruned_search(10, 200, 0.10, &mut model, &mut expensive, &mut rng).unwrap();
        assert_eq!(res.sampled, 200);
        assert_eq!(res.measured, 20);
        assert!(res.best.cost > 0.0);
        assert!(res.model_threshold > 0.0);
    }

    /// The paper's claim, end to end on the deterministic backend: pruning
    /// by the model retains a near-best algorithm. We compare the pruned
    /// search's result against a full (unpruned) search over the same
    /// sample size and require the pruned best to be within a few percent.
    #[test]
    fn pruning_retains_near_best() {
        let n = 9;
        let samples = 300;
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77); // identical sample stream
        let mut model = InstructionCost::default();
        let mut exp_a = SimCyclesCost::opteron();
        let mut exp_b = SimCyclesCost::opteron();

        let pruned = pruned_search(n, samples, 0.10, &mut model, &mut exp_a, &mut rng_a).unwrap();
        let full = random_search(n, samples, &mut exp_b, &mut rng_b).unwrap();
        assert!(
            pruned.best.cost <= full.cost * 1.05,
            "pruned {} vs full {}",
            pruned.best.cost,
            full.cost
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut model = InstructionCost::default();
        let mut expensive = CombinedModelCost::paper_default();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(pruned_search(8, 0, 0.5, &mut model, &mut expensive, &mut rng).is_err());
        assert!(pruned_search(8, 10, 0.0, &mut model, &mut expensive, &mut rng).is_err());
        assert!(pruned_search(8, 10, 1.5, &mut model, &mut expensive, &mut rng).is_err());
        assert!(random_search(8, 0, &mut model, &mut rng).is_err());
    }
}
