//! # wht-search — search over the WHT algorithm space
//!
//! The WHT package's generate-and-test machinery and the paper's
//! model-based pruning:
//!
//! * [`cost`] — pluggable cost backends: instruction model, combined
//!   `alpha*I + beta*M` model, fusion-aware traffic model (scores the
//!   cache-blocked schedule the compiled executor actually replays),
//!   deterministic simulated cycles, wall clock — plus the vectored
//!   layer ([`VectorCost`]/[`CostVec`]/[`CostObjective`]): each model
//!   backend exposes its (work, traffic, lane-work) terms and collapses
//!   them under swappable weights, so one objective swap re-aims every
//!   search at latency, memory, or batched throughput;
//! * [`dp`] — the package's dynamic-programming autotuner (the source of
//!   the paper's "best" algorithms), kept as the evaluate-everything
//!   baseline;
//! * [`memo`] — the cascades-style rebuild of that search: a persistent
//!   [`MemoTable`] of per-span groups with branch-and-bound pruning
//!   ([`PlanCost::compose_lower_bound`]) and per-group provenance, same
//!   answers as [`dp_search`] at a fraction of the evaluations;
//! * [`strategies`] — exhaustive search (small sizes), uniform random
//!   search, and the paper's model-pruned search;
//! * [`planner`] — the production facade: a [`Planner`] owning a cost
//!   backend, amortizing memoized search across calls through an
//!   FFTW-style [`Wisdom`] cache (JSON save/load) and serving transforms
//!   from compiled pass schedules.
//!
//! ```
//! use wht_search::{dp_search, DpOptions, InstructionCost};
//!
//! // Autotune size 2^10 against the instruction model:
//! let mut cost = InstructionCost::default();
//! let result = dp_search(10, &DpOptions::default(), &mut cost)?;
//! println!("best plan: {}", result.best_plan());
//! assert_eq!(result.best_plan().n(), 10);
//! # Ok::<(), wht_core::WhtError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calibrate;
pub mod cost;
pub mod dp;
pub mod local;
pub mod memo;
pub mod planner;
pub mod strategies;

pub use calibrate::{calibrate, CalibrateOptions, CalibratedCost};
pub use cost::{
    invocation_scaled_bound, CombinedModelCost, CostObjective, CostVec, CostWeights,
    FusedTrafficCost, InstructionCost, PlanCost, SimCyclesCost, VectorCost, WallClockCost,
};
pub use dp::{dp_search, split_compositions, DpOptions, DpResult};
pub use local::{local_search, mutate, LocalSearchOptions};
pub use memo::{memo_search, memo_to_dp_result, Group, GroupProvenance, MemoResult, MemoTable};
pub use planner::{Planner, Tuning, Wisdom};
pub use strategies::{exhaustive_search, pruned_search, random_search, PrunedSearchResult, Ranked};
