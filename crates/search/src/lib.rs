//! # wht-search — search over the WHT algorithm space
//!
//! The WHT package's generate-and-test machinery and the paper's
//! model-based pruning:
//!
//! * [`cost`] — pluggable cost backends: instruction model, combined
//!   `alpha*I + beta*M` model, fusion-aware traffic model (scores the
//!   cache-blocked schedule the compiled executor actually replays),
//!   deterministic simulated cycles, wall clock — plus the vectored
//!   layer ([`VectorCost`]/[`CostVec`]/[`CostObjective`]): each model
//!   backend exposes its (work, traffic, lane-work) terms and collapses
//!   them under swappable weights, so one objective swap re-aims every
//!   search at latency, memory, or batched throughput;
//! * [`dp`] — the package's dynamic-programming autotuner (the source of
//!   the paper's "best" algorithms), kept as the evaluate-everything
//!   baseline;
//! * [`memo`] — the cascades-style rebuild of that search: a persistent
//!   [`MemoTable`] of per-span groups with branch-and-bound pruning
//!   ([`PlanCost::compose_lower_bound`]) and per-group provenance, same
//!   answers as [`dp_search`] at a fraction of the evaluations;
//! * [`strategies`] — exhaustive search (small sizes), uniform random
//!   search, and the paper's model-pruned search;
//! * [`planner`] — the production facade: a [`Planner`] owning a cost
//!   backend, amortizing memoized search across calls through an
//!   FFTW-style [`Wisdom`] cache (JSON save/load) and serving transforms
//!   from compiled pass schedules;
//! * [`store`] — the crash-safe persistence layer under that cache (see
//!   the contract below);
//! * [`failpoints`] — the hermetic fault-injection layer that proves the
//!   store's claims.
//!
//! ## Wisdom persistence & crash-safety contract
//!
//! The durable form of [`Wisdom`] is a [`ShardedStore`]: a directory of
//! per-`(n, cost-backend, host-fingerprint)` shard files, each a 36-byte
//! header (magic `WHTSHRD\0`, container version, write stamp, payload
//! length, FNV-1a 64 checksum) over a single-entry wisdom JSON payload.
//! The guarantees, in order of line of defense:
//!
//! 1. **Atomic commit** ([`atomic_write`]): every shard (and the legacy
//!    single-blob [`Wisdom::save`], and `wht-bench`'s `BENCH_*.json`
//!    artifacts) is written temp-file → fsync → rename → dir-fsync. A
//!    crash at any byte leaves the previous committed file intact;
//!    uncommitted temp files are never loaded.
//! 2. **Detection** ([`decode_shard`]): a shard damaged anyway —
//!    truncated, bit-flipped, bad magic, future container version — is
//!    *detectable*, never *loadable*; the failure is a typed
//!    [`StoreDiagnostic`] (`Corrupt` / `Truncated` / `VersionUnknown` /
//!    `ChecksumMismatch` / `IoFailed`), and the same classification
//!    covers legacy blobs ([`Wisdom::load_or_default`]).
//! 3. **Quarantine, not failure** ([`ShardedStore::load`]): bad shards
//!    move into `quarantine/` with their diagnostic; the remaining
//!    shards merge normally (best entry per key: measured-fastest when
//!    evidence exists, else newest stamp). A load never fails as a
//!    whole and never partially applies a damaged shard.
//! 4. **Graceful degradation** ([`Planner::with_store`]): whatever the
//!    store's condition — up to 100% of shards corrupt — the planner
//!    never panics and never serves poisoned tuning; affected sizes
//!    cold-search on first use, bit-identically, and
//!    [`Planner::explain`] / [`Planner::store_diagnostics`] report what
//!    was quarantined.
//!
//! Every failure path is exercised by the fault-injection matrix
//! (`tests/fault_matrix.rs`) through [`failpoints`]: ENOSPC, short
//! writes, fsync/rename failure, and kill-at-any-byte truncation at
//! every named site of the atomic-write path, replayed over hundreds of
//! schedules. The `wht-wisdom` CLI (in `wht-bench`) exposes
//! `inspect` / `fsck` / `merge` over the same APIs.
//!
//! ```
//! use wht_search::{dp_search, DpOptions, InstructionCost};
//!
//! // Autotune size 2^10 against the instruction model:
//! let mut cost = InstructionCost::default();
//! let result = dp_search(10, &DpOptions::default(), &mut cost)?;
//! println!("best plan: {}", result.best_plan());
//! assert_eq!(result.best_plan().n(), 10);
//! # Ok::<(), wht_core::WhtError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calibrate;
pub mod cost;
pub mod dp;
pub mod failpoints;
pub mod local;
pub mod memo;
pub mod planner;
pub mod store;
pub mod strategies;

pub use calibrate::{calibrate, CalibrateOptions, CalibratedCost};
pub use cost::{
    invocation_scaled_bound, CombinedModelCost, CostObjective, CostVec, CostWeights,
    FusedTrafficCost, InstructionCost, PlanCost, SimCyclesCost, VectorCost, WallClockCost,
};
pub use dp::{dp_search, split_compositions, DpOptions, DpResult};
pub use failpoints::Fault;
pub use local::{local_search, mutate, LocalSearchOptions};
pub use memo::{memo_search, memo_to_dp_result, Group, GroupProvenance, MemoResult, MemoTable};
pub use planner::{PlanProvenance, Planner, Tuning, Wisdom};
pub use store::{
    atomic_write, decode_shard, encode_shard, fnv1a64, host_fingerprint, ShardedStore,
    StoreDiagnostic, StoreLoad,
};
pub use strategies::{exhaustive_search, pruned_search, random_search, PrunedSearchResult, Ranked};
