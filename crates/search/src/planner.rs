//! The production facade: a [`Planner`] that amortizes search across
//! millions of transforms via an FFTW-style **wisdom** cache.
//!
//! The paper's pipeline — search the algorithm space with a cost model,
//! then run the winner — assumes search cost is paid rarely and execution
//! cost constantly. This module packages that contract:
//!
//! 1. [`Planner::transform`] looks up the best known plan for the input's
//!    size in its [`Wisdom`] store; on a miss it runs the DP autotuner
//!    ([`crate::dp_search`]) against the planner's cost backend **once**,
//!    recording the best plan of *every* size up to `n` (DP computes them
//!    all anyway).
//! 2. The chosen plan is lowered to a `wht_core::compile::CompiledPlan`,
//!    **fused** under the planner's `FusionPolicy` (cache-blocked
//!    super-passes; opt out with `with_fusion(FusionPolicy::disabled())`
//!    or `WHT_NO_FUSE=1`), its large-stride tail **relayouted** under the
//!    `RelayoutPolicy` (gather → unit-stride scratch transform → scatter
//!    past the policy's size threshold; opt out with
//!    `with_relayout(RelayoutPolicy::disabled())` or `WHT_NO_RELAYOUT=1`),
//!    and cached — steady-state traffic is a wisdom hit plus a flat
//!    schedule replay: zero cost evaluations, zero tree walks.
//! 3. Wisdom round-trips through JSON ([`Wisdom::to_json`] /
//!    [`Wisdom::from_json`], or [`Wisdom::save`] / [`Wisdom::load`]), so a
//!    fleet can ship pre-tuned wisdom and a fresh process starts warm —
//!    the FFTW `wisdom` workflow, keyed by `(n, cost-backend name)`. Each
//!    entry records the executor tuning it was recorded with (tile
//!    budget, kernel backend, per-size relayout), and an importing
//!    planner replays that configuration per size.
//!
//! ```
//! use wht_search::{InstructionCost, Planner};
//!
//! let mut planner = Planner::new(InstructionCost::default());
//! let mut x: Vec<f64> = (0..1024).map(|v| (v % 7) as f64).collect();
//! planner.transform(&mut x)?;          // first call: DP search + compile
//! let evals_after_first = planner.evaluations();
//! planner.transform(&mut x)?;          // warm call: pure replay
//! assert_eq!(planner.evaluations(), evals_after_first);
//!
//! // Ship the tuning to another process:
//! let json = planner.wisdom().to_json();
//! let warm = wht_search::Wisdom::from_json(&json)?;
//! assert!(warm.get(10, planner.backend_name()).is_some());
//! # Ok::<(), wht_core::WhtError>(())
//! ```

use crate::cost::PlanCost;
use crate::dp::{dp_search, DpOptions};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;
use wht_core::{CompiledPlan, FusionPolicy, Plan, RelayoutPolicy, Scalar, SimdPolicy, WhtError};

/// Serialized form of one wisdom entry: the plan travels as its
/// WHT-package grammar string, which is stable, human-readable, and
/// validated on parse. `fuse_budget` is the tile budget (in elements) the
/// planner chose when it recorded the entry — `0` means fusion was off,
/// absent/`null` means "not recorded" (the reader's default policy
/// applies). `simd` records the kernel backend the entry was tuned for
/// (`true` = lane kernels, `false` = scalar, absent = not recorded), with
/// the same semantics.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WisdomEntry {
    n: u32,
    backend: String,
    plan: String,
    fuse_budget: Option<u64>,
    simd: Option<bool>,
    relayout: Option<u64>,
}

/// One best-known plan plus the executor tuning recorded with it.
#[derive(Debug, Clone, PartialEq)]
struct WisdomRecord {
    plan: Plan,
    fuse_budget: Option<usize>,
    simd: Option<bool>,
    relayout: Option<usize>,
}

/// Serialized wisdom store.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WisdomFile {
    version: u32,
    entries: Vec<WisdomEntry>,
}

const WISDOM_VERSION: u32 = 2;

/// Oldest wisdom format [`Wisdom::from_json`] still reads. Version 1
/// predates the `relayout` tuning field; its entries load with no
/// relayout choice recorded and re-serialize as the current version.
const WISDOM_MIN_VERSION: u32 = 1;

/// Best-known plans keyed by `(n, cost-backend name)` — the FFTW-style
/// wisdom store behind [`Planner`].
///
/// Keyed size-first so the hot lookup ([`Wisdom::get`]) borrows the
/// backend name instead of allocating a composite key per probe.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Wisdom {
    entries: HashMap<u32, HashMap<String, WisdomRecord>>,
}

impl Wisdom {
    /// Empty store.
    pub fn new() -> Self {
        Wisdom::default()
    }

    /// Number of `(size, backend)` entries.
    pub fn len(&self) -> usize {
        self.entries.values().map(HashMap::len).sum()
    }

    /// `true` when no wisdom has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Best known plan for size `2^n` under `backend`, if recorded.
    pub fn get(&self, n: u32, backend: &str) -> Option<&Plan> {
        Some(&self.entries.get(&n)?.get(backend)?.plan)
    }

    /// Tile budget (elements) recorded with the `(n, backend)` entry:
    /// `Some(0)` means the recorder had fusion off, `None` means no
    /// choice was recorded (or no entry exists) and the reader's default
    /// policy applies.
    pub fn fuse_budget(&self, n: u32, backend: &str) -> Option<usize> {
        self.entries.get(&n)?.get(backend)?.fuse_budget
    }

    /// Kernel backend recorded with the `(n, backend)` entry:
    /// `Some(true)` means the recorder tuned with the SIMD lane kernels,
    /// `Some(false)` with the scalar kernels, `None` means no choice was
    /// recorded (or no entry exists) and the reader's default policy
    /// applies.
    pub fn simd_enabled(&self, n: u32, backend: &str) -> Option<bool> {
        self.entries.get(&n)?.get(backend)?.simd
    }

    /// Relayout tuning recorded with the `(n, backend)` entry: the
    /// gathered-block budget (elements) the recorder's executor relayouted
    /// the tail with at this size, `Some(0)` meaning relayout did not
    /// engage, `None` meaning no choice was recorded (or no entry exists)
    /// and the reader's default policy applies.
    pub fn relayout_budget(&self, n: u32, backend: &str) -> Option<usize> {
        self.entries.get(&n)?.get(backend)?.relayout
    }

    /// Record (or overwrite) the best plan for `(n, backend)` with no
    /// executor tuning attached.
    ///
    /// # Errors
    /// [`WhtError::LengthMismatch`] if `plan.n() != n` — wisdom for size
    /// `n` must transform size-`2^n` inputs.
    pub fn insert(&mut self, n: u32, backend: &str, plan: Plan) -> Result<(), WhtError> {
        self.insert_with_tuning(n, backend, plan, None, None, None)
    }

    /// Record (or overwrite) the best plan for `(n, backend)`, attaching
    /// the tile budget the recorder compiled with (`Some(0)` = fusion
    /// off) but no kernel-backend choice.
    ///
    /// # Errors
    /// [`WhtError::LengthMismatch`] if `plan.n() != n`.
    pub fn insert_with_budget(
        &mut self,
        n: u32,
        backend: &str,
        plan: Plan,
        fuse_budget: Option<usize>,
    ) -> Result<(), WhtError> {
        self.insert_with_tuning(n, backend, plan, fuse_budget, None, None)
    }

    /// Record (or overwrite) the best plan for `(n, backend)`, attaching
    /// the full executor tuning it was recorded under: the tile budget
    /// (`Some(0)` = fusion off), the kernel backend (`Some(true)` = SIMD
    /// lane kernels), and the relayout gathered-block budget (`Some(0)` =
    /// relayout off at this size).
    ///
    /// # Errors
    /// [`WhtError::LengthMismatch`] if `plan.n() != n`.
    pub fn insert_with_tuning(
        &mut self,
        n: u32,
        backend: &str,
        plan: Plan,
        fuse_budget: Option<usize>,
        simd: Option<bool>,
        relayout: Option<usize>,
    ) -> Result<(), WhtError> {
        if plan.n() != n {
            return Err(WhtError::LengthMismatch {
                expected: 1usize << n,
                got: plan.size(),
            });
        }
        self.entries.entry(n).or_default().insert(
            backend.to_string(),
            WisdomRecord {
                plan,
                fuse_budget,
                simd,
                relayout,
            },
        );
        Ok(())
    }

    /// Render the store as JSON (entries sorted for determinism).
    pub fn to_json(&self) -> String {
        let mut entries: Vec<WisdomEntry> = self
            .entries
            .iter()
            .flat_map(|(n, backends)| {
                backends.iter().map(|(backend, record)| WisdomEntry {
                    n: *n,
                    backend: backend.clone(),
                    plan: record.plan.to_string(),
                    fuse_budget: record.fuse_budget.map(|b| b as u64),
                    simd: record.simd,
                    relayout: record.relayout.map(|b| b as u64),
                })
            })
            .collect();
        entries.sort_by(|a, b| (a.n, &a.backend).cmp(&(b.n, &b.backend)));
        serde_json::to_string_pretty(&WisdomFile {
            version: WISDOM_VERSION,
            entries,
        })
        .expect("wisdom serialization is infallible")
    }

    /// Parse a store from JSON, validating every plan.
    ///
    /// # Errors
    /// [`WhtError::InvalidConfig`] on malformed JSON or a version
    /// mismatch; [`WhtError::Parse`] / structural errors on a bad plan
    /// string.
    pub fn from_json(json: &str) -> Result<Self, WhtError> {
        let file: WisdomFile = serde_json::from_str(json)
            .map_err(|e| WhtError::InvalidConfig(format!("wisdom JSON: {e}")))?;
        if !(WISDOM_MIN_VERSION..=WISDOM_VERSION).contains(&file.version) {
            return Err(WhtError::InvalidConfig(format!(
                "wisdom version {} unsupported (expected {WISDOM_MIN_VERSION}..={WISDOM_VERSION})",
                file.version
            )));
        }
        let mut wisdom = Wisdom::new();
        for entry in file.entries {
            let plan: Plan = entry.plan.parse()?;
            // saturate on 32-bit hosts
            let budget = entry
                .fuse_budget
                .map(|b| usize::try_from(b).unwrap_or(usize::MAX));
            let relayout = entry
                .relayout
                .map(|b| usize::try_from(b).unwrap_or(usize::MAX));
            wisdom.insert_with_tuning(
                entry.n,
                &entry.backend,
                plan,
                budget,
                entry.simd,
                relayout,
            )?;
        }
        Ok(wisdom)
    }

    /// Write the store to `path` as JSON.
    ///
    /// # Errors
    /// [`WhtError::InvalidConfig`] wrapping the I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), WhtError> {
        std::fs::write(path.as_ref(), self.to_json()).map_err(|e| {
            WhtError::InvalidConfig(format!("writing wisdom {}: {e}", path.as_ref().display()))
        })
    }

    /// Read a store previously written by [`Wisdom::save`].
    ///
    /// # Errors
    /// [`WhtError::InvalidConfig`] wrapping I/O failures and the parse
    /// errors of [`Wisdom::from_json`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, WhtError> {
        let text = std::fs::read_to_string(path.as_ref()).map_err(|e| {
            WhtError::InvalidConfig(format!("reading wisdom {}: {e}", path.as_ref().display()))
        })?;
        Wisdom::from_json(&text)
    }
}

/// Production entry point: owns a cost backend, a [`Wisdom`] store, and a
/// compiled-schedule cache; serves `planner.transform(&mut x)` with DP
/// search amortized to zero on the warm path (see the module docs).
#[derive(Debug)]
pub struct Planner<C: PlanCost> {
    cost: C,
    opts: DpOptions,
    fusion: FusionPolicy,
    /// `true` once [`Planner::with_fusion`] was called: the explicit
    /// policy then beats any budget recorded in wisdom.
    fusion_pinned: bool,
    simd: SimdPolicy,
    /// `true` once [`Planner::with_simd`] was called: the explicit policy
    /// then beats any backend recorded in wisdom.
    simd_pinned: bool,
    relayout: RelayoutPolicy,
    /// `true` once [`Planner::with_relayout`] was called: the explicit
    /// policy then beats any relayout tuning recorded in wisdom.
    relayout_pinned: bool,
    wisdom: Wisdom,
    compiled: HashMap<u32, CompiledPlan>,
    evaluations: usize,
}

impl<C: PlanCost> Planner<C> {
    /// Planner with default DP options, empty wisdom, and the
    /// process-default fusion policy ([`FusionPolicy::from_env`]).
    pub fn new(cost: C) -> Self {
        Planner::with_options(cost, DpOptions::default())
    }

    /// Planner with explicit DP options.
    pub fn with_options(cost: C, opts: DpOptions) -> Self {
        Planner {
            cost,
            opts,
            fusion: FusionPolicy::from_env(),
            fusion_pinned: false,
            simd: SimdPolicy::from_env(),
            simd_pinned: false,
            relayout: RelayoutPolicy::from_env(),
            relayout_pinned: false,
            wisdom: Wisdom::new(),
            compiled: HashMap::new(),
            evaluations: 0,
        }
    }

    /// Override the fusion policy (builder style). Drops compiled
    /// schedules so already-served sizes recompile under the new policy,
    /// and **pins** the policy: budgets recorded in wisdom (including by
    /// this planner's own earlier searches) no longer override it. This
    /// is the API opt-out: `with_fusion(FusionPolicy::disabled())` serves
    /// unfused schedules whatever the environment or the wisdom says.
    #[must_use]
    pub fn with_fusion(mut self, fusion: FusionPolicy) -> Self {
        self.fusion = fusion;
        self.fusion_pinned = true;
        self.compiled.clear();
        self
    }

    /// The fusion policy new wisdom is recorded with and cold sizes are
    /// compiled under. Unless the policy was pinned with
    /// [`Planner::with_fusion`], a budget recorded in wisdom overrides it
    /// per size — except when the policy is *disabled* (e.g. the
    /// `WHT_NO_FUSE=1` kill switch), which imported wisdom can never
    /// re-enable.
    pub fn fusion(&self) -> FusionPolicy {
        self.fusion
    }

    /// Override the SIMD kernel policy (builder style). Drops compiled
    /// schedules so already-served sizes recompile under the new policy,
    /// and **pins** it: backends recorded in wisdom no longer override
    /// it. This is the API opt-out: `with_simd(SimdPolicy::disabled())`
    /// serves scalar kernels whatever the environment or the wisdom says.
    #[must_use]
    pub fn with_simd(mut self, simd: SimdPolicy) -> Self {
        self.simd = simd;
        self.simd_pinned = true;
        self.compiled.clear();
        self
    }

    /// The SIMD policy new wisdom is recorded with and cold sizes are
    /// compiled under — same override semantics as [`Planner::fusion`]:
    /// a backend recorded in wisdom wins per size unless the policy was
    /// pinned with [`Planner::with_simd`] or is *disabled* (the
    /// `WHT_NO_SIMD=1` kill switch, which imported wisdom can never
    /// re-enable).
    pub fn simd(&self) -> SimdPolicy {
        self.simd
    }

    /// Override the tail-relayout policy (builder style). Drops compiled
    /// schedules so already-served sizes recompile under the new policy,
    /// and **pins** it: relayout tuning recorded in wisdom no longer
    /// overrides it. This is the API opt-out:
    /// `with_relayout(RelayoutPolicy::disabled())` keeps every tail
    /// sweeping in place whatever the environment or the wisdom says.
    #[must_use]
    pub fn with_relayout(mut self, relayout: RelayoutPolicy) -> Self {
        self.relayout = relayout;
        self.relayout_pinned = true;
        self.compiled.clear();
        self
    }

    /// The relayout policy new wisdom is recorded with and cold sizes are
    /// compiled under — same override semantics as [`Planner::fusion`]: a
    /// recorded per-size tuning wins unless the policy was pinned with
    /// [`Planner::with_relayout`] or is *disabled* (the `WHT_NO_RELAYOUT=1`
    /// kill switch, which imported wisdom can never re-enable).
    pub fn relayout(&self) -> RelayoutPolicy {
        self.relayout
    }

    /// Adopt previously saved wisdom (builder style). Drops any compiled
    /// schedules so already-served sizes re-resolve against the new
    /// wisdom instead of silently replaying superseded plans.
    #[must_use]
    pub fn with_wisdom(mut self, wisdom: Wisdom) -> Self {
        self.wisdom = wisdom;
        self.compiled.clear();
        self
    }

    /// Name of the owned cost backend — the wisdom key this planner reads
    /// and writes.
    pub fn backend_name(&self) -> &'static str {
        self.cost.name()
    }

    /// Total cost evaluations this planner has performed; a warm planner
    /// serves transforms without increasing this.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// The wisdom accumulated (and/or imported) so far.
    pub fn wisdom(&self) -> &Wisdom {
        &self.wisdom
    }

    /// Best plan for size `2^n`: wisdom hit, or one DP search whose entire
    /// per-size table is recorded as wisdom.
    ///
    /// # Errors
    /// Propagates DP option validation and cost-backend failures.
    pub fn plan(&mut self, n: u32) -> Result<&Plan, WhtError> {
        let backend = self.cost.name();
        if self.wisdom.get(n, backend).is_none() {
            let dp = dp_search(n, &self.opts, &mut self.cost)?;
            self.evaluations += dp.evaluations;
            // Record the executor tuning this planner compiles with, so a
            // process importing the wisdom replays the same configuration
            // (budget 0 = fusion off; simd = which kernels ran; relayout
            // = the gathered-block budget where this plan's schedule
            // actually relayouts at that size, 0 where it does not — the
            // record must reflect the executed configuration, so it is
            // read off the compiled schedule itself rather than the
            // policy gates: a policy knob like `min_passes`, or a plan
            // shape with too short a tail, can decline relayout even
            // where the size gates pass, and an importer must not replay
            // a schedule this planner never ran).
            let budget = if self.fusion.enabled() {
                self.fusion.budget_elems
            } else {
                0
            };
            for m in 1..=n {
                // Smaller sizes only fill holes: an imported entry may
                // encode better (e.g. measured) wisdom than this search.
                if m == n || self.wisdom.get(m, backend).is_none() {
                    let relayout = if self.relayout.enabled()
                        && CompiledPlan::compile(&dp.best[m as usize])
                            .fuse(&self.fusion)
                            .relayout(&self.relayout)
                            .has_relayout()
                    {
                        self.relayout.budget_elems
                    } else {
                        0
                    };
                    self.wisdom.insert_with_tuning(
                        m,
                        backend,
                        dp.best[m as usize].clone(),
                        Some(budget),
                        Some(self.simd.enabled()),
                        Some(relayout),
                    )?;
                }
            }
        }
        Ok(self
            .wisdom
            .get(n, backend)
            .expect("entry inserted or present above"))
    }

    /// In-place transform `x <- WHT(x.len()) * x` using the best known
    /// plan for that size: the warm path is a wisdom hit plus a compiled
    /// pass-schedule replay, with **zero** cost evaluations.
    ///
    /// # Errors
    /// [`WhtError::InvalidConfig`] unless `x.len()` is a power of two with
    /// exponent in `1..=MAX_N`; propagates search errors on cold sizes.
    pub fn transform<T: Scalar>(&mut self, x: &mut [T]) -> Result<(), WhtError> {
        let len = x.len();
        if len < 2 || !len.is_power_of_two() {
            return Err(WhtError::InvalidConfig(format!(
                "transform length {len} is not a power of two >= 2"
            )));
        }
        let n = len.trailing_zeros();
        if n > wht_core::MAX_N {
            return Err(WhtError::SizeTooLarge { n });
        }
        if !self.compiled.contains_key(&n) {
            let plan = self.plan(n)?.clone();
            // A budget recorded with the wisdom entry wins over the
            // planner's default policy — imported wisdom replays the
            // executor configuration it was tuned with. Two things beat
            // the recorded budget: an explicitly pinned policy
            // (with_fusion), and a *disabled* default (the WHT_NO_FUSE
            // kill switch must not be re-enabled by imported wisdom).
            let policy = if self.fusion_pinned || !self.fusion.enabled() {
                self.fusion
            } else {
                self.wisdom
                    .fuse_budget(n, self.cost.name())
                    .map(FusionPolicy::new)
                    .unwrap_or(self.fusion)
            };
            // Same resolution for the kernel backend: a recorded choice
            // wins unless the policy is pinned (with_simd) or disabled
            // (the WHT_NO_SIMD kill switch, which imported wisdom must
            // not re-enable).
            let simd = if self.simd_pinned || !self.simd.enabled() {
                self.simd
            } else {
                match self.wisdom.simd_enabled(n, self.cost.name()) {
                    Some(true) => SimdPolicy::auto(),
                    Some(false) => SimdPolicy::disabled(),
                    None => self.simd,
                }
            };
            // And for the relayout stage: a recorded per-size tuning is
            // replayed eagerly (the recorder already made the size
            // decision), 0 means relayout stays off for this size, and a
            // pinned or disabled (WHT_NO_RELAYOUT) policy beats the
            // record.
            let relayout = if self.relayout_pinned || !self.relayout.enabled() {
                self.relayout
            } else {
                match self.wisdom.relayout_budget(n, self.cost.name()) {
                    Some(0) => RelayoutPolicy::disabled(),
                    // Replay at the engine's floor (min_passes 2, no size
                    // gate), not the default policy's knobs: the record
                    // only exists because the recorder's schedule
                    // actually gathered, and a recorder tuned with
                    // min_passes below the default must not have its
                    // configuration silently dropped on import.
                    Some(budget) => RelayoutPolicy {
                        budget_elems: budget,
                        min_elems: 0,
                        min_passes: 2,
                    },
                    None => self.relayout,
                }
            };
            self.compiled.insert(
                n,
                CompiledPlan::compile_with(&plan, &policy, &relayout, &simd),
            );
        }
        self.compiled.get(&n).expect("inserted above").apply(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CombinedModelCost, InstructionCost};
    use wht_core::{apply_plan, max_abs_diff, naive_wht};

    #[test]
    fn transform_matches_reference_and_amortizes_search() {
        let mut planner = Planner::new(InstructionCost::default());
        let input: Vec<f64> = (0..512)
            .map(|j| ((j * 37 + 5) % 64) as f64 - 32.0)
            .collect();
        let want = naive_wht(&input);
        let mut x = input.clone();
        planner.transform(&mut x).unwrap();
        assert!(max_abs_diff(&x, &want) < 1e-9);
        let cold_evals = planner.evaluations();
        assert!(cold_evals > 0, "cold path must have searched");

        for _ in 0..3 {
            let mut y = input.clone();
            planner.transform(&mut y).unwrap();
            assert!(max_abs_diff(&y, &want) < 1e-9);
        }
        assert_eq!(
            planner.evaluations(),
            cold_evals,
            "warm path must not search"
        );
    }

    #[test]
    fn dp_table_becomes_wisdom_for_all_smaller_sizes() {
        let mut planner = Planner::new(InstructionCost::default());
        planner.plan(9).unwrap();
        for m in 1..=9u32 {
            let plan = planner
                .wisdom()
                .get(m, "instruction-model")
                .expect("size recorded");
            assert_eq!(plan.n(), m);
        }
        // A smaller size is now free.
        let evals = planner.evaluations();
        planner.plan(5).unwrap();
        assert_eq!(planner.evaluations(), evals);
    }

    #[test]
    fn wisdom_round_trips_through_json_and_warms_a_new_planner() {
        let mut tuned = Planner::new(CombinedModelCost::paper_default());
        tuned.plan(10).unwrap();
        let json = tuned.wisdom().to_json();

        let wisdom = Wisdom::from_json(&json).unwrap();
        assert_eq!(&wisdom, tuned.wisdom());

        let mut warm = Planner::new(CombinedModelCost::paper_default()).with_wisdom(wisdom);
        let mut x: Vec<f64> = (0..1024).map(|j| (j % 11) as f64).collect();
        let want = naive_wht(&x);
        warm.transform(&mut x).unwrap();
        assert!(max_abs_diff(&x, &want) < 1e-9);
        assert_eq!(
            warm.evaluations(),
            0,
            "imported wisdom must skip search entirely"
        );
    }

    #[test]
    fn with_wisdom_invalidates_compiled_schedules() {
        let mut planner = Planner::new(InstructionCost::default());
        let mut x: Vec<f64> = (0..256).map(|j| (j % 5) as f64).collect();
        planner.transform(&mut x).unwrap(); // compiles the DP winner for n=8
        assert!(!planner.compiled.is_empty());

        // Import wisdom that names a *different* plan for n=8.
        let mut wisdom = Wisdom::new();
        let imported = Plan::iterative(8).unwrap();
        wisdom
            .insert(8, "instruction-model", imported.clone())
            .unwrap();
        let evals_before_import = planner.evaluations();
        let mut planner = planner.with_wisdom(wisdom);
        assert!(
            planner.compiled.is_empty(),
            "stale schedules must not survive a wisdom import"
        );
        planner.transform(&mut x).unwrap();
        assert_eq!(
            planner.compiled.get(&8),
            Some(&CompiledPlan::compile_with(
                &imported,
                &planner.fusion(),
                &planner.relayout(),
                &planner.simd()
            )),
            "warm transform must execute the imported plan"
        );
        assert_eq!(
            planner.evaluations(),
            evals_before_import,
            "imported wisdom covers the size; no new search"
        );
    }

    #[test]
    fn wisdom_records_the_tile_budget_and_round_trips_it() {
        // The planner stamps its fusion budget on every entry it records.
        let mut planner =
            Planner::new(InstructionCost::default()).with_fusion(FusionPolicy::new(1 << 9));
        planner.plan(8).unwrap();
        for m in 1..=8u32 {
            assert_eq!(
                planner.wisdom().fuse_budget(m, "instruction-model"),
                Some(1 << 9)
            );
        }
        // ...and the budget survives the JSON round trip.
        let back = Wisdom::from_json(&planner.wisdom().to_json()).unwrap();
        assert_eq!(&back, planner.wisdom());
        assert_eq!(back.fuse_budget(8, "instruction-model"), Some(1 << 9));

        // A fusion-off planner records budget 0, distinct from "not
        // recorded".
        let mut off =
            Planner::new(InstructionCost::default()).with_fusion(FusionPolicy::disabled());
        off.plan(4).unwrap();
        let back = Wisdom::from_json(&off.wisdom().to_json()).unwrap();
        assert_eq!(back.fuse_budget(4, "instruction-model"), Some(0));
        let mut plain = Wisdom::new();
        plain
            .insert(4, "instruction-model", Plan::iterative(4).unwrap())
            .unwrap();
        assert_eq!(plain.fuse_budget(4, "instruction-model"), None);
    }

    #[test]
    fn recorded_budget_overrides_the_importing_planners_policy() {
        // Tune with fusion off; a default (fusion-on) importer must still
        // compile that size unfused, honoring the recorded configuration.
        let mut tuned =
            Planner::new(InstructionCost::default()).with_fusion(FusionPolicy::disabled());
        tuned.plan(10).unwrap();
        let wisdom = Wisdom::from_json(&tuned.wisdom().to_json()).unwrap();

        let mut warm = Planner::new(InstructionCost::default()).with_wisdom(wisdom);
        let mut x: Vec<f64> = (0..1024).map(|j| (j % 13) as f64).collect();
        let want = naive_wht(&x);
        warm.transform(&mut x).unwrap();
        assert!(max_abs_diff(&x, &want) < 1e-9);
        assert!(
            !warm.compiled.get(&10).unwrap().is_fused(),
            "recorded budget 0 must win over the importer's default policy"
        );
        // Version-1 wisdom without the field still loads (budget absent).
        let legacy =
            "{\"version\":1,\"entries\":[{\"n\":4,\"backend\":\"x\",\"plan\":\"split[small[2],small[2]]\"}]}";
        let w = Wisdom::from_json(legacy).unwrap();
        assert_eq!(w.fuse_budget(4, "x"), None);
    }

    #[test]
    fn disabled_default_policy_is_a_kill_switch_over_recorded_budgets() {
        // An *unpinned* disabled policy is what WHT_NO_FUSE=1 produces at
        // construction (simulated here by setting the private fields —
        // tests must not mutate process env under a threaded test
        // runner). Imported wisdom carrying a fused budget must not
        // re-enable fusion past the kill switch.
        let mut wisdom = Wisdom::new();
        wisdom
            .insert_with_budget(
                10,
                "instruction-model",
                Plan::iterative(10).unwrap(),
                Some(1 << 9),
            )
            .unwrap();
        let mut planner = Planner::new(InstructionCost::default()).with_wisdom(wisdom);
        planner.fusion = FusionPolicy::disabled();
        planner.fusion_pinned = false;
        let mut x: Vec<f64> = (0..1024).map(|j| (j % 5) as f64).collect();
        planner.transform(&mut x).unwrap();
        assert!(
            !planner.compiled.get(&10).unwrap().is_fused(),
            "a disabled default policy must beat the recorded budget"
        );
    }

    #[test]
    fn with_fusion_pins_the_policy_over_recorded_budgets() {
        // A planner that already recorded a fused budget for a size must
        // still honor a later explicit opt-out — with_fusion pins the
        // policy, beating the planner's own earlier wisdom.
        let mut planner =
            Planner::new(InstructionCost::default()).with_fusion(FusionPolicy::new(1 << 12));
        let mut x: Vec<f64> = (0..4096).map(|j| (j % 7) as f64).collect();
        planner.transform(&mut x).unwrap();
        assert!(planner.compiled.get(&12).unwrap().is_fused());
        assert_eq!(
            planner.wisdom().fuse_budget(12, "instruction-model"),
            Some(1 << 12)
        );

        let mut planner = planner.with_fusion(FusionPolicy::disabled());
        let mut y: Vec<f64> = (0..4096).map(|j| (j % 7) as f64).collect();
        planner.transform(&mut y).unwrap();
        assert!(
            !planner.compiled.get(&12).unwrap().is_fused(),
            "explicit with_fusion(disabled) must beat the recorded budget"
        );
        // And flipping back on works the same way.
        let mut planner = planner.with_fusion(FusionPolicy::unbounded());
        let mut z: Vec<f64> = (0..4096).map(|j| (j % 7) as f64).collect();
        planner.transform(&mut z).unwrap();
        assert!(planner.compiled.get(&12).unwrap().is_fused());
    }

    #[test]
    fn wisdom_records_the_kernel_backend_and_round_trips_it() {
        // The planner stamps its SIMD policy on every entry it records...
        let mut planner =
            Planner::new(InstructionCost::default()).with_simd(SimdPolicy::disabled());
        planner.plan(8).unwrap();
        for m in 1..=8u32 {
            assert_eq!(
                planner.wisdom().simd_enabled(m, "instruction-model"),
                Some(false)
            );
        }
        // ...and the record survives the JSON round trip.
        let back = Wisdom::from_json(&planner.wisdom().to_json()).unwrap();
        assert_eq!(&back, planner.wisdom());
        assert_eq!(back.simd_enabled(8, "instruction-model"), Some(false));

        // An importing planner with an unpinned enabled policy replays the
        // recorded scalar choice.
        let mut warm = Planner::new(InstructionCost::default()).with_wisdom(back);
        warm.simd = SimdPolicy::auto();
        warm.simd_pinned = false;
        let mut x: Vec<f64> = (0..256).map(|j| (j % 7) as f64).collect();
        warm.transform(&mut x).unwrap();
        assert!(
            !warm.compiled.get(&8).unwrap().is_simd(),
            "recorded scalar tuning must win over the importer's default"
        );

        // Entries without the field (legacy wisdom) record no choice.
        let legacy =
            "{\"version\":1,\"entries\":[{\"n\":4,\"backend\":\"x\",\"plan\":\"split[small[2],small[2]]\"}]}";
        let w = Wisdom::from_json(legacy).unwrap();
        assert_eq!(w.simd_enabled(4, "x"), None);
    }

    #[test]
    fn simd_kill_switch_and_pinning_beat_recorded_backends() {
        // Imported wisdom tuned with the lane kernels must not re-enable
        // them past an (unpinned) disabled policy — what WHT_NO_SIMD=1
        // produces at construction.
        let mut wisdom = Wisdom::new();
        wisdom
            .insert_with_tuning(
                10,
                "instruction-model",
                Plan::iterative(10).unwrap(),
                None,
                Some(true),
                None,
            )
            .unwrap();
        let mut planner = Planner::new(InstructionCost::default()).with_wisdom(wisdom.clone());
        planner.simd = SimdPolicy::disabled();
        planner.simd_pinned = false;
        let mut x: Vec<f64> = (0..1024).map(|j| (j % 5) as f64).collect();
        planner.transform(&mut x).unwrap();
        assert!(
            !planner.compiled.get(&10).unwrap().is_simd(),
            "a disabled default policy must beat the recorded backend"
        );

        // And an explicit with_simd pin beats the record in both
        // directions.
        let mut pinned = Planner::new(InstructionCost::default())
            .with_wisdom(wisdom)
            .with_simd(SimdPolicy::disabled());
        let mut y: Vec<f64> = (0..1024).map(|j| (j % 5) as f64).collect();
        pinned.transform(&mut y).unwrap();
        assert!(!pinned.compiled.get(&10).unwrap().is_simd());
        let mut repinned = pinned.with_simd(SimdPolicy::auto());
        let mut z: Vec<f64> = (0..1024).map(|j| (j % 5) as f64).collect();
        repinned.transform(&mut z).unwrap();
        assert!(repinned.compiled.get(&10).unwrap().is_simd());
    }

    #[test]
    fn wisdom_records_relayout_tuning_and_round_trips_it() {
        // The record is read off the compiled schedule itself: for every
        // size the recorded budget is nonzero exactly where this
        // planner's executor would actually relayout that size's plan —
        // a policy knob (min_passes) or a short-tailed DP winner that
        // declines relayout must record 0, whatever the size gates say.
        let mut planner = Planner::new(InstructionCost::default())
            .with_fusion(FusionPolicy::new(1 << 6))
            .with_relayout(RelayoutPolicy::eager(1 << 9));
        planner.plan(14).unwrap();
        for m in 1..=14u32 {
            let plan_m = planner
                .wisdom()
                .get(m, "instruction-model")
                .unwrap()
                .clone();
            let executed = CompiledPlan::compile(&plan_m)
                .fuse(&planner.fusion())
                .relayout(&planner.relayout())
                .has_relayout();
            assert_eq!(
                planner.wisdom().relayout_budget(m, "instruction-model"),
                Some(if executed { 1 << 9 } else { 0 }),
                "record must match the executed schedule at n = {m}"
            );
        }
        assert_eq!(
            planner.wisdom().relayout_budget(8, "instruction-model"),
            Some(0),
            "sizes inside the block budget cannot gather and record 0"
        );
        // And a policy whose min_passes declines every tail records 0
        // everywhere even though its size gates pass.
        let mut never = Planner::new(InstructionCost::default())
            .with_fusion(FusionPolicy::new(1 << 6))
            .with_relayout(RelayoutPolicy {
                min_passes: 99,
                ..RelayoutPolicy::eager(1 << 9)
            });
        never.plan(14).unwrap();
        for m in 1..=14u32 {
            assert_eq!(
                never.wisdom().relayout_budget(m, "instruction-model"),
                Some(0),
                "a declining policy must not record a tuning it never ran"
            );
        }
        // ...and the record survives the JSON round trip.
        let back = Wisdom::from_json(&planner.wisdom().to_json()).unwrap();
        assert_eq!(&back, planner.wisdom());

        // An importing planner with an unpinned default policy replays
        // the recorded tuning: the served schedule relayouts at n = 14
        // even though the default policy's size floor would decline it.
        // (The recorded plan is pinned to a many-factor shape so its
        // fused schedule actually has a gatherable tail.)
        let mut imported = Wisdom::new();
        imported
            .insert_with_tuning(
                14,
                "instruction-model",
                Plan::iterative(14).unwrap(),
                Some(1 << 6),
                None,
                Some(1 << 9),
            )
            .unwrap();
        let mut warm = Planner::new(InstructionCost::default()).with_wisdom(imported);
        // Unpinned default policy regardless of the CI leg's env (the
        // WHT_NO_RELAYOUT leg would otherwise kill-switch the replay,
        // which has its own test below).
        warm.relayout = RelayoutPolicy::default();
        warm.relayout_pinned = false;
        let mut x: Vec<f64> = (0..1 << 14).map(|j| (j % 11) as f64 - 5.0).collect();
        let want = naive_wht(&x);
        warm.transform(&mut x).unwrap();
        assert!(max_abs_diff(&x, &want) < 1e-9);
        assert!(
            warm.compiled.get(&14).unwrap().has_relayout(),
            "recorded relayout tuning must be replayed by the importer"
        );
        assert_eq!(warm.evaluations(), 0);
    }

    #[test]
    fn recorded_relayout_replays_at_the_engine_floor_not_the_default_knobs() {
        // A recorder tuned with min_passes = 2 can gather a 2-pass tail
        // and record its budget; the importer must replay that exact
        // configuration instead of re-gating it through the default
        // min_passes = 3 (which would silently drop the tuning).
        // binary_iterative(10, 2) fused at 2^6 leaves a 2-pass tail
        // (strides 64 and 256) that a 2^9 block budget can gather.
        let plan = Plan::binary_iterative(10, 2).unwrap();
        let two_pass_tail = CompiledPlan::compile(&plan)
            .fuse(&FusionPolicy::new(1 << 6))
            .relayout(&RelayoutPolicy {
                min_passes: 2,
                ..RelayoutPolicy::eager(1 << 9)
            });
        assert!(two_pass_tail.has_relayout(), "test precondition");
        let mut wisdom = Wisdom::new();
        wisdom
            .insert_with_tuning(
                10,
                "instruction-model",
                plan,
                Some(1 << 6),
                None,
                Some(1 << 9),
            )
            .unwrap();
        let mut warm = Planner::new(InstructionCost::default()).with_wisdom(wisdom);
        warm.relayout = RelayoutPolicy::default();
        warm.relayout_pinned = false;
        let mut x: Vec<f64> = (0..1 << 10).map(|j| (j % 9) as f64 - 4.0).collect();
        let want = naive_wht(&x);
        warm.transform(&mut x).unwrap();
        assert!(max_abs_diff(&x, &want) < 1e-9);
        assert!(
            warm.compiled.get(&10).unwrap().has_relayout(),
            "a recorded 2-pass-tail tuning must survive import"
        );
    }

    #[test]
    fn relayout_kill_switch_and_pinning_beat_recorded_tuning() {
        // Imported wisdom tuned with relayout must not re-enable it past
        // an (unpinned) disabled policy — what WHT_NO_RELAYOUT=1 produces
        // at construction.
        let mut wisdom = Wisdom::new();
        wisdom
            .insert_with_tuning(
                14,
                "instruction-model",
                Plan::iterative(14).unwrap(),
                Some(1 << 6),
                None,
                Some(1 << 9),
            )
            .unwrap();
        let mut planner = Planner::new(InstructionCost::default()).with_wisdom(wisdom.clone());
        planner.relayout = RelayoutPolicy::disabled();
        planner.relayout_pinned = false;
        let mut x: Vec<f64> = (0..1 << 14).map(|j| (j % 5) as f64).collect();
        planner.transform(&mut x).unwrap();
        assert!(
            !planner.compiled.get(&14).unwrap().has_relayout(),
            "a disabled default policy must beat the recorded tuning"
        );

        // And an explicit with_relayout pin beats the record both ways.
        let mut pinned = Planner::new(InstructionCost::default())
            .with_wisdom(wisdom)
            .with_relayout(RelayoutPolicy::disabled());
        let mut y: Vec<f64> = (0..1 << 14).map(|j| (j % 5) as f64).collect();
        pinned.transform(&mut y).unwrap();
        assert!(!pinned.compiled.get(&14).unwrap().has_relayout());
        let mut repinned = pinned.with_relayout(RelayoutPolicy::eager(1 << 9));
        let mut z: Vec<f64> = (0..1 << 14).map(|j| (j % 5) as f64).collect();
        repinned.transform(&mut z).unwrap();
        assert!(repinned.compiled.get(&14).unwrap().has_relayout());
    }

    #[test]
    fn version_1_wisdom_migrates_and_round_trips_as_version_2() {
        // A version-1 store (pre-relayout) must load — its entries carry
        // no relayout choice — and re-serialize as the current version
        // without bricking anything.
        let legacy = "{\"version\":1,\"entries\":[{\"n\":4,\"backend\":\"x\",\
                       \"plan\":\"split[small[2],small[2]]\",\"fuse_budget\":512,\
                       \"simd\":true}]}";
        let w = Wisdom::from_json(legacy).unwrap();
        assert_eq!(w.fuse_budget(4, "x"), Some(512));
        assert_eq!(w.simd_enabled(4, "x"), Some(true));
        assert_eq!(w.relayout_budget(4, "x"), None);
        let json = w.to_json();
        assert!(json.contains("\"version\": 2"), "{json}");
        let back = Wisdom::from_json(&json).unwrap();
        assert_eq!(back, w);
        // Future versions stay rejected.
        assert!(Wisdom::from_json("{\"version\":3,\"entries\":[]}").is_err());
    }

    #[test]
    fn unknown_json_fields_are_tolerated() {
        // Forward compatibility: a store written by a newer build with
        // extra tuning fields must still load here — unknown fields are
        // ignored, known ones are honored.
        let future = "{\"version\":2,\"future_knob\":\"xyz\",\"entries\":[{\"n\":4,\
                      \"backend\":\"x\",\"plan\":\"split[small[2],small[2]]\",\
                      \"fuse_budget\":64,\"simd\":false,\"relayout\":32,\
                      \"prefetch_distance\":8}]}";
        let w = Wisdom::from_json(future).unwrap();
        assert_eq!(w.fuse_budget(4, "x"), Some(64));
        assert_eq!(w.simd_enabled(4, "x"), Some(false));
        assert_eq!(w.relayout_budget(4, "x"), Some(32));
    }

    #[test]
    fn wisdom_save_load_files() {
        let mut planner = Planner::new(InstructionCost::default());
        planner.plan(8).unwrap();
        let dir = std::env::temp_dir().join("wht_wisdom_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("wisdom_{}.json", std::process::id()));
        planner.wisdom().save(&path).unwrap();
        let loaded = Wisdom::load(&path).unwrap();
        assert_eq!(&loaded, planner.wisdom());
        std::fs::remove_file(&path).ok();
        assert!(Wisdom::load(dir.join("missing.json")).is_err());
    }

    #[test]
    fn planner_transform_agrees_with_direct_plan_application() {
        let mut planner = Planner::new(InstructionCost::default());
        let mut via_planner: Vec<f64> = (0..256).map(|j| (j % 17) as f64 - 8.0).collect();
        let direct_input = via_planner.clone();
        planner.transform(&mut via_planner).unwrap();
        let plan = planner.plan(8).unwrap().clone();
        let mut direct = direct_input;
        apply_plan(&plan, &mut direct).unwrap();
        assert_eq!(
            via_planner, direct,
            "planner must run exactly its chosen plan"
        );
    }

    #[test]
    fn bad_lengths_rejected() {
        let mut planner = Planner::new(InstructionCost::default());
        let mut odd = vec![0.0f64; 24];
        assert!(planner.transform(&mut odd).is_err());
        let mut one = vec![0.0f64; 1];
        assert!(planner.transform(&mut one).is_err());
        assert_eq!(planner.evaluations(), 0);
    }

    #[test]
    fn malformed_wisdom_rejected() {
        assert!(Wisdom::from_json("not json").is_err());
        assert!(Wisdom::from_json("{\"version\":99,\"entries\":[]}").is_err());
        let bad_plan =
            "{\"version\":1,\"entries\":[{\"n\":4,\"backend\":\"x\",\"plan\":\"small[\"}]}";
        assert!(Wisdom::from_json(bad_plan).is_err());
        let wrong_size =
            "{\"version\":1,\"entries\":[{\"n\":4,\"backend\":\"x\",\"plan\":\"small[3]\"}]}";
        assert!(Wisdom::from_json(wrong_size).is_err());
    }
}
