//! The production facade: a [`Planner`] that amortizes search across
//! millions of transforms via an FFTW-style **wisdom** cache.
//!
//! The paper's pipeline — search the algorithm space with a cost model,
//! then run the winner — assumes search cost is paid rarely and execution
//! cost constantly. This module packages that contract:
//!
//! 1. [`Planner::transform`] looks up the best known plan for the input's
//!    size in its [`Wisdom`] store; on a miss it runs the memoized
//!    branch-and-bound search ([`crate::memo_search`]) against the
//!    planner's cost backend **once**, recording the best plan of *every*
//!    size up to `n` (the memo solves them all anyway). The [`MemoTable`]
//!    persists inside the planner, so a later, larger search only solves
//!    the spans it has never seen, and [`Planner::explain`] can say which
//!    composition won each searched size and why.
//! 2. The chosen plan is lowered through the staged pipeline of
//!    `wht_core::compile` under one **resolved** [`ExecPolicy`]
//!    (fuse → relayout → re-codelet → kernel backend → batch), and the
//!    compiled schedule is cached — steady-state traffic is a wisdom hit
//!    plus a flat schedule replay: zero cost evaluations, zero tree
//!    walks.
//! 3. Wisdom round-trips through JSON ([`Wisdom::to_json`] /
//!    [`Wisdom::from_json`], or [`Wisdom::save`] / [`Wisdom::load`]), so a
//!    fleet can ship pre-tuned wisdom and a fresh process starts warm —
//!    the FFTW `wisdom` workflow, keyed by `(n, cost-backend name)`. Each
//!    entry records the executor [`Tuning`] it was recorded with, and an
//!    importing planner replays that configuration per size.
//!
//! ## How a policy is resolved
//!
//! Every executor knob resolves through one rule —
//! [`wht_core::resolve_knob`], **API pin > wisdom > environment >
//! default** — exactly once per compiled size:
//!
//! - `Planner::with_*` (or [`Planner::with_exec`]) **pins** a policy: it
//!   beats recorded wisdom, including this planner's own earlier
//!   searches.
//! - An unpinned but *disabled* policy (what a `WHT_NO_*` kill switch
//!   produces at construction) also beats wisdom: imported tuning must
//!   never re-enable a stage the process opted out of.
//! - Otherwise a recorded [`Tuning`] replays the recorder's
//!   configuration, and absent any record the planner's environment
//!   snapshot / defaults apply.
//!
//! ## Wisdom format history
//!
//! - **Version 7** (current): [`Tuning`] gains the `stream` field —
//!   whether the recorder's executor ran with the streaming-store /
//!   prefetch memory codelets enabled (lowering stage 6). An on/off
//!   record only: the stage's engagement threshold
//!   (`WHT_STREAM_THRESHOLD`) is host tuning, so an importer replaying
//!   `Some(true)` uses its *own* policy's threshold — and the stage is
//!   bit-identical either way, so a migrated replay cannot change
//!   output. Version-6 blobs load transparently (no choice recorded).
//! - **Version 6**: each entry gains two optional columns —
//!   `provenance` (the memo search's winning composition and candidate
//!   counts, a [`PlanProvenance`] record, so [`Planner::explain`]
//!   survives a process restart) and `measured_ns` (measured wall-clock
//!   evidence for the entry's plan; the sharded store's merge keeps the
//!   measured-fastest entry per key — see [`crate::store`]). Version-5
//!   blobs load transparently (both columns simply absent).
//! - **Version 5**: [`Tuning`] gains the `objective` field —
//!   which [`CostObjective`] weighting the recorder's vectored cost
//!   backend collapsed its terms under when the entry's plan won, or
//!   absent when the backend ran with its default weights. A planner
//!   re-aimed via [`Planner::with_objective`] treats entries recorded
//!   under a *different* objective as misses (the plan was optimal for a
//!   different collapse) while legacy planners keep reading every entry.
//!   Version-4 blobs load transparently (no objective recorded).
//! - **Version 4**: [`Tuning`] gains the `batch` field — the
//!   row-block threshold the recorder's batched executor engaged at, or
//!   `0` when batching was off. Version-3 blobs load transparently (the
//!   field is simply absent: no choice recorded).
//! - **Version 3** (PR 5): each entry carries one forward-compatible
//!   `tuning` record ([`Tuning`]) — new executor stages add fields there,
//!   never new entry-level columns. Unknown fields inside `tuning` (from
//!   newer builds) are ignored on load.
//! - **Version 2** (PR 4): flat per-entry `fuse_budget` / `simd` /
//!   `relayout` columns. Loads transparently — the flat fields migrate
//!   into a [`Tuning`] with no `recodelet` choice recorded — and
//!   re-serializes as version 3.
//! - **Version 1** (PR 2): as version 2 without `relayout`. Same
//!   migration path.
//!
//! Migrated blobs replay bit-identically: the recorded knobs resolve
//! exactly as they did when written, and the stages they predate resolve
//! to the importer's defaults (which never change output bits — every
//! lowering stage is bit-exact by construction).
//!
//! ```
//! use wht_search::{InstructionCost, Planner};
//!
//! let mut planner = Planner::new(InstructionCost::default());
//! let mut x: Vec<f64> = (0..1024).map(|v| (v % 7) as f64).collect();
//! planner.transform(&mut x)?;          // first call: DP search + compile
//! let evals_after_first = planner.evaluations();
//! planner.transform(&mut x)?;          // warm call: pure replay
//! assert_eq!(planner.evaluations(), evals_after_first);
//!
//! // Ship the tuning to another process:
//! let json = planner.wisdom().to_json();
//! let warm = wht_search::Wisdom::from_json(&json)?;
//! assert!(warm.get(10, planner.backend_name()).is_some());
//! # Ok::<(), wht_core::WhtError>(())
//! ```

use crate::cost::{CostObjective, PlanCost, VectorCost};
use crate::dp::DpOptions;
use crate::memo::{memo_search, MemoTable};
use crate::store::{atomic_write, ShardedStore, StoreDiagnostic};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;
use wht_core::{
    resolve_knob, BatchPolicy, CompiledPlan, ExecPolicy, FusionPolicy, Plan, RecodeletPolicy,
    RelayoutPolicy, Scalar, SimdPolicy, StreamPolicy, WhtError,
};

/// Per-entry executor tuning: which configuration the recorder's executor
/// actually ran when the entry's plan was chosen. One forward-compatible
/// record — every lowering stage owns one optional field, `None` meaning
/// "no choice recorded, the reader's policy applies" (distinct from a
/// recorded *off*, which replays as off).
///
/// Stored sizes are `u64` so wisdom written on 64-bit hosts loads on
/// 32-bit ones (values saturate to `usize::MAX` on conversion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Tuning {
    /// Fused-tile budget in elements; `Some(0)` = fusion was off.
    pub fuse_budget: Option<u64>,
    /// Kernel backend: `Some(true)` = the SIMD lane kernels.
    pub simd: Option<bool>,
    /// Relayout gathered-block budget in elements at this size;
    /// `Some(0)` = the recorder's executor did not gather this size.
    pub relayout: Option<u64>,
    /// Whether the re-codelet stage ran. An on/off record only: the
    /// stage's shape knobs (`max_k`, `footprint_elems`) are host tuning,
    /// so an importer replaying `Some(true)` uses its *own* policy's
    /// shape rather than the recorder's.
    pub recodelet: Option<bool>,
    /// Batched-execution row-block threshold at this size; `Some(0)` =
    /// the recorder's executor did not build a batch schedule for this
    /// size (stage off, or the size is past the batch cap).
    pub batch: Option<u64>,
    /// Whether the streaming-store / prefetch memory codelets (stage 6)
    /// were enabled in the recorder's executor. On/off only: the
    /// engagement threshold is host tuning, so an importer replaying
    /// `Some(true)` uses its *own* [`StreamPolicy`] threshold rather
    /// than the recorder's.
    pub stream: Option<bool>,
    /// The [`CostObjective`] the recorder's vectored cost backend was
    /// collapsed under when this plan won; `None` = default weights (or a
    /// pre-version-5 record). Unlike the executor knobs above this is not
    /// replayed into an [`ExecPolicy`] — it gates wisdom *reuse*: a
    /// planner aimed at a different objective must re-search, not replay
    /// a plan that was optimal for a different collapse.
    pub objective: Option<CostObjective>,
}

impl Tuning {
    /// `true` when no choice at all was recorded.
    pub fn is_empty(&self) -> bool {
        *self == Tuning::default()
    }
}

/// How a wisdom entry's plan won its memo search: the winning
/// composition and the candidate counts, lifted out of the searcher's
/// [`crate::memo::GroupProvenance`] into a serializable record so
/// [`Planner::explain`] survives a process restart (wisdom version 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanProvenance {
    /// The winning composition's part spans (`None`: the leaf codelet
    /// won).
    pub composition: Option<Vec<u32>>,
    /// Total candidates in the group when it was solved.
    pub candidates: u64,
    /// Candidates actually cost-evaluated.
    pub evaluated: u64,
    /// Candidates pruned unevaluated by the lower bound.
    pub pruned: u64,
    /// The winner's collapsed model cost.
    pub cost: f64,
}

impl PlanProvenance {
    /// One-line human-readable account of the recorded choice — the same
    /// shape as the live memo's [`crate::memo::Group::explain`], marked
    /// as a replay so a reader can tell a restart-survived record from a
    /// this-process deliberation.
    pub fn explain(&self, m: u32) -> String {
        let via = match &self.composition {
            Some(parts) => {
                let parts: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
                format!("split[{}]", parts.join(","))
            }
            None => "leaf".to_string(),
        };
        format!(
            "2^{m}: cost={:.3} via {via}; evaluated {}/{} candidates ({} pruned) \
             [replayed from wisdom]",
            self.cost, self.evaluated, self.candidates, self.pruned
        )
    }
}

/// One best-known plan plus everything recorded with it: the executor
/// tuning, the search provenance (version 6), and measured wall-clock
/// evidence when any exists.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WisdomRecord {
    pub(crate) plan: Plan,
    pub(crate) tuning: Tuning,
    pub(crate) provenance: Option<PlanProvenance>,
    pub(crate) measured_ns: Option<u64>,
}

/// Serialized wisdom entry, current (version-6) shape: the plan travels
/// as its WHT-package grammar string (stable, human-readable, validated
/// on parse), the executor tuning as one nested [`Tuning`] record, plus
/// the optional provenance and measurement columns.
#[derive(Debug, Clone, Serialize)]
struct WisdomEntryOut {
    n: u32,
    backend: String,
    plan: String,
    tuning: Tuning,
    provenance: Option<PlanProvenance>,
    measured_ns: Option<u64>,
}

/// Permissive read-side entry covering every supported version: versions
/// 3–6 carry `tuning` (earlier records simply lack the later fields);
/// versions 1–2 carried the flat fields, which migrate into a [`Tuning`]
/// on load. Unknown fields are ignored by the JSON layer (forward
/// compatibility).
#[derive(Debug, Clone, Deserialize)]
struct WisdomEntryIn {
    n: u32,
    backend: String,
    plan: String,
    tuning: Option<Tuning>,
    provenance: Option<PlanProvenance>,
    measured_ns: Option<u64>,
    fuse_budget: Option<u64>,
    simd: Option<bool>,
    relayout: Option<u64>,
}

/// Serialized wisdom store (write side).
#[derive(Debug, Clone, Serialize)]
struct WisdomFileOut {
    version: u32,
    entries: Vec<WisdomEntryOut>,
}

/// Serialized wisdom store (read side).
#[derive(Debug, Clone, Deserialize)]
struct WisdomFileIn {
    version: u32,
    entries: Vec<WisdomEntryIn>,
}

const WISDOM_VERSION: u32 = 7;

/// Oldest wisdom format [`Wisdom::from_json`] still reads (see the module
/// docs' format history).
const WISDOM_MIN_VERSION: u32 = 1;

/// Best-known plans keyed by `(n, cost-backend name)` — the FFTW-style
/// wisdom store behind [`Planner`].
///
/// Keyed size-first so the hot lookup ([`Wisdom::get`]) borrows the
/// backend name instead of allocating a composite key per probe.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Wisdom {
    entries: HashMap<u32, HashMap<String, WisdomRecord>>,
}

impl Wisdom {
    /// Empty store.
    pub fn new() -> Self {
        Wisdom::default()
    }

    /// Number of `(size, backend)` entries.
    pub fn len(&self) -> usize {
        self.entries.values().map(HashMap::len).sum()
    }

    /// `true` when no wisdom has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Best known plan for size `2^n` under `backend`, if recorded.
    pub fn get(&self, n: u32, backend: &str) -> Option<&Plan> {
        Some(&self.entries.get(&n)?.get(backend)?.plan)
    }

    /// The executor [`Tuning`] recorded with the `(n, backend)` entry,
    /// `None` when no entry exists.
    pub fn tuning(&self, n: u32, backend: &str) -> Option<Tuning> {
        Some(self.entries.get(&n)?.get(backend)?.tuning)
    }

    /// Tile budget (elements) recorded with the `(n, backend)` entry:
    /// `Some(0)` means the recorder had fusion off, `None` means no
    /// choice was recorded (or no entry exists) and the reader's default
    /// policy applies.
    pub fn fuse_budget(&self, n: u32, backend: &str) -> Option<usize> {
        self.tuning(n, backend)?
            .fuse_budget
            .map(|b| usize::try_from(b).unwrap_or(usize::MAX))
    }

    /// Kernel backend recorded with the `(n, backend)` entry:
    /// `Some(true)` means the recorder tuned with the SIMD lane kernels,
    /// `Some(false)` with the scalar kernels, `None` means no choice was
    /// recorded (or no entry exists) and the reader's default policy
    /// applies.
    pub fn simd_enabled(&self, n: u32, backend: &str) -> Option<bool> {
        self.tuning(n, backend)?.simd
    }

    /// Relayout tuning recorded with the `(n, backend)` entry: the
    /// gathered-block budget (elements) the recorder's executor relayouted
    /// the tail with at this size, `Some(0)` meaning relayout did not
    /// engage, `None` meaning no choice was recorded (or no entry exists)
    /// and the reader's default policy applies.
    pub fn relayout_budget(&self, n: u32, backend: &str) -> Option<usize> {
        self.tuning(n, backend)?
            .relayout
            .map(|b| usize::try_from(b).unwrap_or(usize::MAX))
    }

    /// Batched-execution tuning recorded with the `(n, backend)` entry:
    /// the row-block threshold the recorder's executor built its batch
    /// schedule with at this size, `Some(0)` meaning it built none
    /// (stage off, or the size is past the batch cap), `None` meaning no
    /// choice was recorded (or no entry exists) and the reader's default
    /// policy applies.
    pub fn batch_block(&self, n: u32, backend: &str) -> Option<usize> {
        self.tuning(n, backend)?
            .batch
            .map(|b| usize::try_from(b).unwrap_or(usize::MAX))
    }

    /// The [`CostObjective`] recorded with the `(n, backend)` entry:
    /// which weighting the recorder's vectored cost backend collapsed its
    /// terms under when the plan won. `None` means default weights, a
    /// pre-version-5 record, or no entry at all.
    pub fn objective(&self, n: u32, backend: &str) -> Option<CostObjective> {
        self.tuning(n, backend)?.objective
    }

    /// Record (or overwrite) the best plan for `(n, backend)` with no
    /// executor tuning attached.
    ///
    /// # Errors
    /// [`WhtError::LengthMismatch`] if `plan.n() != n` — wisdom for size
    /// `n` must transform size-`2^n` inputs.
    pub fn insert(&mut self, n: u32, backend: &str, plan: Plan) -> Result<(), WhtError> {
        self.insert_with_tuning(n, backend, plan, Tuning::default())
    }

    /// Record (or overwrite) the best plan for `(n, backend)`, attaching
    /// the tile budget the recorder compiled with (`Some(0)` = fusion
    /// off) but no other executor choice.
    ///
    /// # Errors
    /// [`WhtError::LengthMismatch`] if `plan.n() != n`.
    pub fn insert_with_budget(
        &mut self,
        n: u32,
        backend: &str,
        plan: Plan,
        fuse_budget: Option<usize>,
    ) -> Result<(), WhtError> {
        self.insert_with_tuning(
            n,
            backend,
            plan,
            Tuning {
                fuse_budget: fuse_budget.map(|b| b as u64),
                ..Tuning::default()
            },
        )
    }

    /// Record (or overwrite) the best plan for `(n, backend)`, attaching
    /// the full executor [`Tuning`] it was recorded under.
    ///
    /// # Errors
    /// [`WhtError::LengthMismatch`] if `plan.n() != n`.
    pub fn insert_with_tuning(
        &mut self,
        n: u32,
        backend: &str,
        plan: Plan,
        tuning: Tuning,
    ) -> Result<(), WhtError> {
        if plan.n() != n {
            return Err(WhtError::LengthMismatch {
                expected: 1usize << n,
                got: plan.size(),
            });
        }
        self.entries.entry(n).or_default().insert(
            backend.to_string(),
            WisdomRecord {
                plan,
                tuning,
                provenance: None,
                measured_ns: None,
            },
        );
        Ok(())
    }

    /// The search provenance recorded with the `(n, backend)` entry —
    /// how its plan won — or `None` when no entry exists or the entry
    /// predates wisdom version 6.
    pub fn provenance(&self, n: u32, backend: &str) -> Option<&PlanProvenance> {
        self.entries.get(&n)?.get(backend)?.provenance.as_ref()
    }

    /// Attach search provenance to an existing `(n, backend)` entry.
    pub(crate) fn set_provenance(&mut self, n: u32, backend: &str, provenance: PlanProvenance) {
        if let Some(record) = self.entries.get_mut(&n).and_then(|b| b.get_mut(backend)) {
            record.provenance = Some(provenance);
        }
    }

    /// Measured wall-clock evidence (nanoseconds) recorded with the
    /// `(n, backend)` entry, if any. The sharded store's merge keeps the
    /// measured-fastest entry per key.
    pub fn measured_ns(&self, n: u32, backend: &str) -> Option<u64> {
        self.entries.get(&n)?.get(backend)?.measured_ns
    }

    /// Record measured wall-clock evidence for the `(n, backend)` entry's
    /// plan — the adaptive-feedback input to the store's
    /// measured-fastest merge.
    ///
    /// # Errors
    /// [`WhtError::InvalidConfig`] when no entry exists to attach the
    /// measurement to.
    pub fn record_measurement(&mut self, n: u32, backend: &str, ns: u64) -> Result<(), WhtError> {
        match self.entries.get_mut(&n).and_then(|b| b.get_mut(backend)) {
            Some(record) => {
                record.measured_ns = Some(ns);
                Ok(())
            }
            None => Err(WhtError::InvalidConfig(format!(
                "no wisdom entry for (n={n}, backend={backend}) to attach a measurement to"
            ))),
        }
    }

    /// Every `(n, backend)` key currently recorded (unsorted).
    pub fn entry_keys(&self) -> Vec<(u32, String)> {
        self.entries
            .iter()
            .flat_map(|(n, backends)| backends.keys().map(|b| (*n, b.clone())))
            .collect()
    }

    /// Consume the store into its records.
    pub(crate) fn into_records(self) -> impl Iterator<Item = (u32, String, WisdomRecord)> {
        self.entries.into_iter().flat_map(|(n, backends)| {
            backends
                .into_iter()
                .map(move |(backend, record)| (n, backend, record))
        })
    }

    /// Insert a full record, replacing any existing `(n, backend)` entry.
    pub(crate) fn insert_record(&mut self, n: u32, backend: &str, record: WisdomRecord) {
        self.entries
            .entry(n)
            .or_default()
            .insert(backend.to_string(), record);
    }

    /// The single `(n, backend)` entry rendered as a current-version
    /// wisdom JSON document — the payload of one store shard.
    pub(crate) fn entry_json(&self, n: u32, backend: &str) -> Option<String> {
        let record = self.entries.get(&n)?.get(backend)?;
        let file = WisdomFileOut {
            version: WISDOM_VERSION,
            entries: vec![WisdomEntryOut {
                n,
                backend: backend.to_string(),
                plan: record.plan.to_string(),
                tuning: record.tuning,
                provenance: record.provenance.clone(),
                measured_ns: record.measured_ns,
            }],
        };
        Some(serde_json::to_string_pretty(&file).expect("wisdom serialization is infallible"))
    }

    /// Merge `incoming` into this store, key by key: missing entries are
    /// adopted outright, and an existing entry is replaced only when the
    /// incoming one carries **strictly better measured evidence** (a
    /// faster `measured_ns`, or any measurement where the incumbent has
    /// none). Without evidence the incumbent wins — absorbing a store
    /// must never silently discard this process's own fresher tuning.
    pub fn absorb(&mut self, incoming: Wisdom) {
        for (n, backend, record) in incoming.into_records() {
            let replace = match self.entries.get(&n).and_then(|b| b.get(&backend)) {
                None => true,
                Some(existing) => crate::store::prefer_candidate(
                    record.measured_ns,
                    0,
                    existing.measured_ns,
                    u64::MAX,
                ),
            };
            if replace {
                self.insert_record(n, &backend, record);
            }
        }
    }

    /// Render the store as JSON (entries sorted for determinism), in the
    /// current (version-6) format.
    pub fn to_json(&self) -> String {
        let mut entries: Vec<WisdomEntryOut> = self
            .entries
            .iter()
            .flat_map(|(n, backends)| {
                backends.iter().map(|(backend, record)| WisdomEntryOut {
                    n: *n,
                    backend: backend.clone(),
                    plan: record.plan.to_string(),
                    tuning: record.tuning,
                    provenance: record.provenance.clone(),
                    measured_ns: record.measured_ns,
                })
            })
            .collect();
        entries.sort_by(|a, b| (a.n, &a.backend).cmp(&(b.n, &b.backend)));
        serde_json::to_string_pretty(&WisdomFileOut {
            version: WISDOM_VERSION,
            entries,
        })
        .expect("wisdom serialization is infallible")
    }

    /// Parse a store from JSON, validating every plan. Version-1 through
    /// version-3 stores migrate transparently (see the module docs'
    /// format history) and re-serialize as the current version.
    ///
    /// # Errors
    /// [`WhtError::InvalidConfig`] on malformed JSON or a version
    /// mismatch; [`WhtError::Parse`] / structural errors on a bad plan
    /// string.
    pub fn from_json(json: &str) -> Result<Self, WhtError> {
        let file: WisdomFileIn = serde_json::from_str(json)
            .map_err(|e| WhtError::InvalidConfig(format!("wisdom JSON: {e}")))?;
        if !(WISDOM_MIN_VERSION..=WISDOM_VERSION).contains(&file.version) {
            return Err(WhtError::InvalidConfig(format!(
                "wisdom version {} unsupported (expected {WISDOM_MIN_VERSION}..={WISDOM_VERSION})",
                file.version
            )));
        }
        let mut wisdom = Wisdom::new();
        for entry in file.entries {
            let plan: Plan = entry.plan.parse()?;
            // Versions 3-6 carry the nested record; versions 1-2 carried
            // flat columns, which migrate into the same shape. A nested
            // record wins over any stray flat fields.
            let tuning = entry.tuning.unwrap_or(Tuning {
                fuse_budget: entry.fuse_budget,
                simd: entry.simd,
                relayout: entry.relayout,
                recodelet: None,
                batch: None,
                stream: None,
                objective: None,
            });
            wisdom.insert_with_tuning(entry.n, &entry.backend, plan, tuning)?;
            if let Some(provenance) = entry.provenance {
                wisdom.set_provenance(entry.n, &entry.backend, provenance);
            }
            if let Some(ns) = entry.measured_ns {
                wisdom.record_measurement(entry.n, &entry.backend, ns)?;
            }
        }
        Ok(wisdom)
    }

    /// Write the store to `path` as JSON, atomically and durably
    /// (temp file + fsync + rename — see [`crate::store::atomic_write`]):
    /// a crash mid-save leaves the previous blob intact, never a torn
    /// half-JSON.
    ///
    /// # Errors
    /// [`WhtError::Io`] naming the failed step.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), WhtError> {
        atomic_write(path.as_ref(), self.to_json().as_bytes())
    }

    /// Read a store previously written by [`Wisdom::save`].
    ///
    /// # Errors
    /// [`WhtError::InvalidConfig`] wrapping I/O failures and the parse
    /// errors of [`Wisdom::from_json`]. Callers that must not fail on a
    /// damaged blob use [`Wisdom::load_or_default`] instead.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, WhtError> {
        let text = std::fs::read_to_string(path.as_ref()).map_err(|e| {
            WhtError::InvalidConfig(format!("reading wisdom {}: {e}", path.as_ref().display()))
        })?;
        Wisdom::from_json(&text)
    }

    /// [`Wisdom::load`] with the store's quarantine-and-degrade contract
    /// instead of a hard failure: a missing file is a clean cold start
    /// (empty wisdom, no diagnostic); an unreadable or damaged blob
    /// yields empty wisdom plus a typed [`StoreDiagnostic`] saying
    /// exactly what was wrong, and the damaged file is moved aside into
    /// a sibling `quarantine/` directory so the next save starts clean.
    /// Never panics, never errors, never partially applies a blob.
    pub fn load_or_default(path: impl AsRef<Path>) -> (Self, Vec<StoreDiagnostic>) {
        let path = path.as_ref();
        let name = path.display().to_string();
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return (Wisdom::new(), Vec::new());
            }
            Err(e) => {
                return (
                    Wisdom::new(),
                    vec![StoreDiagnostic::IoFailed {
                        shard: name,
                        detail: e.to_string(),
                    }],
                );
            }
        };
        match classify_wisdom_json(&name, &text) {
            Ok(wisdom) => (wisdom, Vec::new()),
            Err(diag) => {
                if let Some(parent) = path.parent() {
                    crate::store::quarantine_file(parent, path);
                }
                (Wisdom::new(), vec![diag])
            }
        }
    }
}

/// Parse a wisdom JSON document, classifying any failure as a typed
/// [`StoreDiagnostic`] — truncation (the parser ran off the end of the
/// text), an unsupported future version, or plain corruption. Shared by
/// the sharded store's payload path and [`Wisdom::load_or_default`], so
/// one classification covers both the shard and legacy-blob formats.
pub(crate) fn classify_wisdom_json(name: &str, text: &str) -> Result<Wisdom, StoreDiagnostic> {
    match Wisdom::from_json(text) {
        Ok(wisdom) => Ok(wisdom),
        Err(e) => {
            let msg = e.to_string();
            if msg.contains("unexpected end of input")
                || msg.contains("unterminated string")
                || json_failed_at_end(&msg, text.len())
            {
                Err(StoreDiagnostic::Truncated {
                    shard: name.to_string(),
                    detail: msg,
                })
            } else if let Some(version) = unsupported_version(text) {
                Err(StoreDiagnostic::VersionUnknown {
                    shard: name.to_string(),
                    version,
                })
            } else {
                Err(StoreDiagnostic::Corrupt {
                    shard: name.to_string(),
                    detail: msg,
                })
            }
        }
    }
}

/// `true` when a *JSON-layer* parse failure points at (or within one
/// token of) the end of the text — how a truncated document fails when
/// the cut lands after a complete token, where the parser reports a
/// structural error ("expected ',' or '}'", a half literal) instead of
/// running off the input. Restricted to the JSON layer so a bad plan
/// string's own byte offsets (tiny, relative to the whole blob) never
/// match.
fn json_failed_at_end(msg: &str, len: usize) -> bool {
    if !msg.contains("wisdom JSON") || !msg.contains("at byte ") {
        return false;
    }
    let tail = msg
        .rsplit("at byte ")
        .next()
        .expect("rsplit yields at least one piece");
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    // "false" is the longest half-consumable token: a cut leaving 1-4 of
    // its bytes reports the token's start, up to 4 bytes shy of the end.
    digits
        .parse::<usize>()
        .is_ok_and(|pos| pos >= len.saturating_sub(4))
}

/// The declared version of a wisdom document this build cannot read, if
/// that is what is wrong with it (`None`: the version is fine or the
/// document is too damaged to tell — in which case the real failure is
/// classified elsewhere).
fn unsupported_version(text: &str) -> Option<u32> {
    #[derive(Debug, Clone, Deserialize)]
    struct VersionOnly {
        version: u32,
    }
    let v: VersionOnly = serde_json::from_str(text).ok()?;
    if (WISDOM_MIN_VERSION..=WISDOM_VERSION).contains(&v.version) {
        None
    } else {
        Some(v.version)
    }
}

/// Which knobs of the planner's [`ExecPolicy`] were explicitly pinned
/// through the API (and therefore beat recorded wisdom — the precedence
/// rule's first clause).
#[derive(Debug, Clone, Copy, Default)]
struct PinnedKnobs {
    fusion: bool,
    simd: bool,
    relayout: bool,
    recodelet: bool,
    batch: bool,
    stream: bool,
}

impl PinnedKnobs {
    const ALL: PinnedKnobs = PinnedKnobs {
        fusion: true,
        simd: true,
        relayout: true,
        recodelet: true,
        batch: true,
        stream: true,
    };
}

/// Production entry point: owns a cost backend, a [`Wisdom`] store, and a
/// compiled-schedule cache; serves `planner.transform(&mut x)` with
/// memoized search amortized to zero on the warm path (see the module
/// docs).
#[derive(Debug)]
pub struct Planner<C: PlanCost> {
    cost: C,
    opts: DpOptions,
    /// The planner's own executor configuration (environment snapshot at
    /// construction, fields replaced by the `with_*` builders).
    exec: ExecPolicy,
    /// Which fields of `exec` were pinned through the API.
    pinned: PinnedKnobs,
    wisdom: Wisdom,
    compiled: HashMap<u32, CompiledPlan>,
    /// Solved search groups, kept across `plan` calls: a later, larger
    /// search only solves the spans no earlier search has seen.
    memo: MemoTable,
    /// The named weighting the cost backend was last aimed at via
    /// [`Planner::with_objective`]; `None` = the backend's own weights.
    objective: Option<CostObjective>,
    /// Diagnostics accumulated from store/blob loads this planner
    /// degraded through ([`Planner::with_store`],
    /// [`Planner::with_wisdom_file`]) — surfaced via
    /// [`Planner::store_diagnostics`] and [`Planner::explain`].
    store_diagnostics: Vec<StoreDiagnostic>,
    evaluations: usize,
}

impl<C: PlanCost> Planner<C> {
    /// Planner with default DP options, empty wisdom, and the
    /// process-default executor configuration
    /// ([`ExecPolicy::from_env`]).
    pub fn new(cost: C) -> Self {
        Planner::with_options(cost, DpOptions::default())
    }

    /// Planner with explicit DP options.
    pub fn with_options(cost: C, opts: DpOptions) -> Self {
        Planner {
            cost,
            opts,
            exec: ExecPolicy::from_env(),
            pinned: PinnedKnobs::default(),
            wisdom: Wisdom::new(),
            compiled: HashMap::new(),
            memo: MemoTable::new(),
            objective: None,
            store_diagnostics: Vec::new(),
            evaluations: 0,
        }
    }

    /// Override the **whole** executor configuration (builder style),
    /// pinning every knob: recorded wisdom no longer overrides any stage.
    /// Drops compiled schedules so already-served sizes recompile under
    /// the new configuration. `with_exec(ExecPolicy::all_disabled())` is
    /// the full API opt-out: the pure scalar unfused baseline, whatever
    /// the environment or the wisdom says.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self.pinned = PinnedKnobs::ALL;
        self.compiled.clear();
        self
    }

    /// Override the fusion policy (builder style). Drops compiled
    /// schedules so already-served sizes recompile under the new policy,
    /// and **pins** the policy: budgets recorded in wisdom (including by
    /// this planner's own earlier searches) no longer override it. This
    /// is the API opt-out: `with_fusion(FusionPolicy::disabled())` serves
    /// unfused schedules whatever the environment or the wisdom says.
    #[must_use]
    pub fn with_fusion(mut self, fusion: FusionPolicy) -> Self {
        self.exec.fusion = fusion;
        self.pinned.fusion = true;
        self.compiled.clear();
        self
    }

    /// The fusion policy new wisdom is recorded with and cold sizes are
    /// compiled under — resolution per the module docs' precedence rule.
    pub fn fusion(&self) -> FusionPolicy {
        self.exec.fusion
    }

    /// Override the SIMD kernel policy (builder style); same pin
    /// semantics as [`Planner::with_fusion`].
    #[must_use]
    pub fn with_simd(mut self, simd: SimdPolicy) -> Self {
        self.exec.simd = simd;
        self.pinned.simd = true;
        self.compiled.clear();
        self
    }

    /// The SIMD policy new wisdom is recorded with and cold sizes are
    /// compiled under — resolution per the module docs' precedence rule.
    pub fn simd(&self) -> SimdPolicy {
        self.exec.simd
    }

    /// Override the tail-relayout policy (builder style); same pin
    /// semantics as [`Planner::with_fusion`].
    #[must_use]
    pub fn with_relayout(mut self, relayout: RelayoutPolicy) -> Self {
        self.exec.relayout = relayout;
        self.pinned.relayout = true;
        self.compiled.clear();
        self
    }

    /// The relayout policy new wisdom is recorded with and cold sizes are
    /// compiled under — resolution per the module docs' precedence rule.
    pub fn relayout(&self) -> RelayoutPolicy {
        self.exec.relayout
    }

    /// Override the re-codeleting policy (builder style); same pin
    /// semantics as [`Planner::with_fusion`].
    #[must_use]
    pub fn with_recodelet(mut self, recodelet: RecodeletPolicy) -> Self {
        self.exec.recodelet = recodelet;
        self.pinned.recodelet = true;
        self.compiled.clear();
        self
    }

    /// The re-codeleting policy new wisdom is recorded with and cold
    /// sizes are compiled under — resolution per the module docs'
    /// precedence rule.
    pub fn recodelet(&self) -> RecodeletPolicy {
        self.exec.recodelet
    }

    /// Override the batched-execution policy (builder style); same pin
    /// semantics as [`Planner::with_fusion`].
    #[must_use]
    pub fn with_batch(mut self, batch: BatchPolicy) -> Self {
        self.exec.batch = batch;
        self.pinned.batch = true;
        self.compiled.clear();
        self
    }

    /// The batched-execution policy new wisdom is recorded with and cold
    /// sizes are compiled under — resolution per the module docs'
    /// precedence rule.
    pub fn batch(&self) -> BatchPolicy {
        self.exec.batch
    }

    /// Override the streaming-memory-codelet policy (builder style); same
    /// pin semantics as [`Planner::with_fusion`].
    #[must_use]
    pub fn with_stream(mut self, stream: StreamPolicy) -> Self {
        self.exec.stream = stream;
        self.pinned.stream = true;
        self.compiled.clear();
        self
    }

    /// The streaming-memory-codelet policy new wisdom is recorded with
    /// and cold sizes are compiled under — resolution per the module
    /// docs' precedence rule.
    pub fn stream(&self) -> StreamPolicy {
        self.exec.stream
    }

    /// The planner's own executor configuration (before per-size wisdom
    /// resolution).
    pub fn exec(&self) -> &ExecPolicy {
        &self.exec
    }

    /// Adopt previously saved wisdom (builder style). Drops any compiled
    /// schedules so already-served sizes re-resolve against the new
    /// wisdom instead of silently replaying superseded plans.
    #[must_use]
    pub fn with_wisdom(mut self, wisdom: Wisdom) -> Self {
        self.wisdom = wisdom;
        self.compiled.clear();
        self
    }

    /// Warm the planner from a [`ShardedStore`] (builder style), under
    /// the **degradation contract**: whatever the store's condition —
    /// missing shards, some corrupt, all corrupt — this never fails and
    /// never panics. Intact shards merge into the planner's wisdom
    /// ([`Wisdom::absorb`]: holes fill, measured evidence wins, this
    /// planner's own fresher tuning is never discarded); damaged shards
    /// are quarantined by the load and reported through
    /// [`Planner::store_diagnostics`] and [`Planner::explain`], and the
    /// affected sizes simply cold-search on first use — a warm **miss**,
    /// never poisoned tuning.
    #[must_use]
    pub fn with_store(mut self, store: &ShardedStore) -> Self {
        let loaded = store.load();
        self.store_diagnostics.extend(loaded.diagnostics);
        self.wisdom.absorb(loaded.wisdom);
        self.compiled.clear();
        self
    }

    /// Warm the planner from a legacy single-blob wisdom file (builder
    /// style), with the same degradation contract as
    /// [`Planner::with_store`]: a missing file is a clean cold start, a
    /// damaged one is quarantined and reported, never an error or a
    /// panic ([`Wisdom::load_or_default`]).
    #[must_use]
    pub fn with_wisdom_file(mut self, path: impl AsRef<Path>) -> Self {
        let (wisdom, diagnostics) = Wisdom::load_or_default(path);
        self.store_diagnostics.extend(diagnostics);
        self.wisdom.absorb(wisdom);
        self.compiled.clear();
        self
    }

    /// Persist this planner's accumulated wisdom into `store`, one
    /// atomically committed shard per `(n, backend)` entry. Returns the
    /// number of shards written.
    ///
    /// # Errors
    /// [`WhtError::Io`] on the first shard that fails to commit;
    /// already-committed shards are unaffected.
    pub fn save_store(&self, store: &ShardedStore) -> Result<usize, WhtError> {
        store.save(&self.wisdom)
    }

    /// Diagnostics from every store/blob load this planner degraded
    /// through (empty when all loads were clean).
    pub fn store_diagnostics(&self) -> &[StoreDiagnostic] {
        &self.store_diagnostics
    }

    /// Name of the owned cost backend — the wisdom key this planner reads
    /// and writes.
    pub fn backend_name(&self) -> &'static str {
        self.cost.name()
    }

    /// The named objective the cost backend is currently aimed at
    /// ([`Planner::with_objective`]); `None` = the backend's own weights.
    pub fn objective(&self) -> Option<CostObjective> {
        self.objective
    }

    /// The persistent memo of solved search groups (spans searched by
    /// *this* planner instance; wisdom imported from elsewhere carries no
    /// groups).
    pub fn memo(&self) -> &MemoTable {
        &self.memo
    }

    /// Why size `2^n`'s plan won: the winning composition, the candidate
    /// counts (evaluated / pruned), and — for vectored backends — the
    /// cost terms, as one human-readable line. A size this planner
    /// instance searched reports the live memo's account; a size served
    /// from imported wisdom falls back to the provenance persisted in the
    /// entry (wisdom version 6, marked `[replayed from wisdom]`), so the
    /// account survives a process restart. When the size has already been
    /// compiled, the line also carries the static verifier's verdict on
    /// the schedule actually serving traffic ([`CompiledPlan::verify`]):
    /// `verified` when every invariant proved clean, otherwise the
    /// diagnostic count and the first violation. When any store/blob load
    /// degraded ([`Planner::store_diagnostics`]), the line ends with a
    /// quarantine summary. `None` when this planner neither searched the
    /// size nor holds an entry with recorded provenance.
    pub fn explain(&self, n: u32) -> Option<String> {
        let mut line = match self.memo.group(n) {
            Some(group) => group.explain(n),
            None => self.wisdom.provenance(n, self.cost.name())?.explain(n),
        };
        if let Some(compiled) = self.compiled.get(&n) {
            let diags = compiled.verify();
            if diags.is_empty() {
                line.push_str(" | verified: bounds+disjointness+coverage+scratch");
            } else {
                line.push_str(&format!(
                    " | VERIFY FAILED: {} diagnostic(s), first: {}",
                    diags.len(),
                    diags[0]
                ));
            }
        }
        if !self.store_diagnostics.is_empty() {
            line.push_str(&format!(
                " | store: {} shard(s) quarantined; first: {}",
                self.store_diagnostics.len(),
                self.store_diagnostics[0]
            ));
        }
        Some(line)
    }

    /// Total cost evaluations this planner has performed; a warm planner
    /// serves transforms without increasing this.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// The wisdom accumulated (and/or imported) so far.
    pub fn wisdom(&self) -> &Wisdom {
        &self.wisdom
    }

    /// The [`ExecPolicy`] size `2^n` would compile under right now: every
    /// knob resolved through the one precedence rule (API pin > wisdom >
    /// environment > default, with disabled-default as a kill switch —
    /// see [`wht_core::resolve_knob`]). Exposed so services and tests can
    /// inspect the decision without compiling.
    pub fn resolved_exec(&self, n: u32) -> ExecPolicy {
        let t = self.wisdom.tuning(n, self.cost.name()).unwrap_or_default();
        ExecPolicy {
            fusion: resolve_knob(
                self.pinned.fusion,
                self.exec.fusion,
                t.fuse_budget
                    .map(|b| FusionPolicy::new(usize::try_from(b).unwrap_or(usize::MAX))),
            ),
            relayout: resolve_knob(
                self.pinned.relayout,
                self.exec.relayout,
                t.relayout.map(replay_relayout),
            ),
            recodelet: resolve_knob(
                self.pinned.recodelet,
                self.exec.recodelet,
                // The record is a bool (the stage's shape knobs are
                // host-tuning, not per-size wisdom), so a recorded *on*
                // replays through the reader's own policy — preserving
                // its WHT_RECODELET_* environment tuning — rather than
                // clobbering it with the compiled-in default.
                t.recodelet.map(|on| {
                    if on {
                        self.exec.recodelet
                    } else {
                        RecodeletPolicy::disabled()
                    }
                }),
            ),
            simd: resolve_knob(
                self.pinned.simd,
                self.exec.simd,
                t.simd.map(|on| {
                    if on {
                        SimdPolicy::auto()
                    } else {
                        SimdPolicy::disabled()
                    }
                }),
            ),
            batch: resolve_knob(
                self.pinned.batch,
                self.exec.batch,
                t.batch.map(replay_batch),
            ),
            stream: resolve_knob(
                self.pinned.stream,
                self.exec.stream,
                // On/off record, like `recodelet`: the engagement
                // threshold is host tuning, so a recorded *on* replays
                // through the reader's own policy (preserving its
                // WHT_STREAM_THRESHOLD environment tuning).
                t.stream.map(|on| {
                    if on {
                        self.exec.stream
                    } else {
                        StreamPolicy::disabled()
                    }
                }),
            ),
        }
    }

    /// Whether the `(m, backend)` wisdom entry may serve this planner: it
    /// must exist, and — when the planner is aimed at a named objective —
    /// must have been recorded under that same objective (a plan optimal
    /// for a different collapse is a miss, not a hit).
    fn wisdom_entry_is_current(&self, m: u32, backend: &str) -> bool {
        match self.wisdom.tuning(m, backend) {
            None => false,
            Some(t) => self.objective.is_none() || t.objective == self.objective,
        }
    }

    /// Best plan for size `2^n`: wisdom hit, or one memoized search whose
    /// entire per-size table is recorded as wisdom.
    ///
    /// # Errors
    /// Propagates search option validation and cost-backend failures.
    pub fn plan(&mut self, n: u32) -> Result<&Plan, WhtError> {
        let backend = self.cost.name();
        if !self.wisdom_entry_is_current(n, backend) {
            let res = memo_search(n, &self.opts, &mut self.cost, &mut self.memo)?;
            self.evaluations += res.evaluations;
            // Record the executor tuning this planner compiles with, so a
            // process importing the wisdom replays the same configuration
            // (budget 0 = fusion off; simd = which kernels ran; relayout
            // = the gathered-block budget where this plan's schedule
            // actually relayouts at that size, 0 where it does not — the
            // record must reflect the executed configuration, so it is
            // read off the compiled schedule itself rather than the
            // policy gates: a policy knob like `min_passes`, or a plan
            // shape with too short a tail, can decline relayout even
            // where the size gates pass, and an importer must not replay
            // a schedule this planner never ran).
            let budget = if self.exec.fusion.enabled() {
                self.exec.fusion.budget_elems as u64
            } else {
                0
            };
            for m in 1..=n {
                // Smaller sizes only fill holes (or replace entries
                // recorded under a different objective): an imported
                // entry may encode better (e.g. measured) wisdom than
                // this search.
                if m == n || !self.wisdom_entry_is_current(m, backend) {
                    let plan = self
                        .memo
                        .group(m)
                        .expect("memo_search solved every span up to n")
                        .plan
                        .clone();
                    let relayout = if self.exec.relayout.enabled()
                        && CompiledPlan::compile(&plan)
                            .fuse(&self.exec.fusion)
                            .relayout(&self.exec.relayout)
                            .has_relayout()
                    {
                        self.exec.relayout.budget_elems as u64
                    } else {
                        0
                    };
                    // Like relayout, the batch record is read off the
                    // lowered schedule: a size past the batch cap never
                    // built the product, and an importer must not replay
                    // a threshold this planner's executor never ran.
                    let batch = if self.exec.batch.enabled()
                        && CompiledPlan::compile(&plan)
                            .with_batch(&self.exec.batch)
                            .is_batched()
                    {
                        self.exec.batch.block_rows as u64
                    } else {
                        0
                    };
                    self.wisdom.insert_with_tuning(
                        m,
                        backend,
                        plan,
                        Tuning {
                            fuse_budget: Some(budget),
                            simd: Some(self.exec.simd.enabled()),
                            relayout: Some(relayout),
                            recodelet: Some(self.exec.recodelet.enabled()),
                            batch: Some(batch),
                            // On/off like `recodelet`: engagement is a
                            // call-time property (vector length against
                            // the host-tuned threshold), so the record
                            // is whether the stage ran at all.
                            stream: Some(self.exec.stream.enabled()),
                            objective: self.objective,
                        },
                    )?;
                    // Persist the memo's account of the choice alongside
                    // the plan, so explain(m) survives a process restart
                    // (wisdom version 6).
                    let group = self
                        .memo
                        .group(m)
                        .expect("memo_search solved every span up to n");
                    self.wisdom.set_provenance(
                        m,
                        backend,
                        PlanProvenance {
                            composition: group.provenance.composition.clone(),
                            candidates: group.provenance.candidates as u64,
                            evaluated: group.provenance.evaluated as u64,
                            pruned: group.provenance.pruned as u64,
                            cost: group.cost,
                        },
                    );
                }
            }
        }
        Ok(self
            .wisdom
            .get(n, backend)
            .expect("entry inserted or present above"))
    }

    /// In-place transform `x <- WHT(x.len()) * x` using the best known
    /// plan for that size: the warm path is a wisdom hit plus a compiled
    /// pass-schedule replay, with **zero** cost evaluations.
    ///
    /// # Errors
    /// [`WhtError::InvalidConfig`] unless `x.len()` is a power of two with
    /// exponent in `1..=MAX_N`; propagates search errors on cold sizes.
    pub fn transform<T: Scalar>(&mut self, x: &mut [T]) -> Result<(), WhtError> {
        let len = x.len();
        if len < 2 || !len.is_power_of_two() {
            return Err(WhtError::InvalidConfig(format!(
                "transform length {len} is not a power of two >= 2"
            )));
        }
        let n = len.trailing_zeros();
        if n > wht_core::MAX_N {
            return Err(WhtError::SizeTooLarge { n });
        }
        if !self.compiled.contains_key(&n) {
            let plan = self.plan(n)?.clone();
            let exec = self.resolved_exec(n);
            self.compiled
                .insert(n, CompiledPlan::compile_exec(&plan, &exec));
        }
        // Measure the replay and feed the wall-clock back into the wisdom
        // entry it executed (fastest sample wins, matching the sharded
        // store's measured-fastest merge) — so a planner that merely
        // *runs* accumulates the measured evidence the store's
        // cross-process merge arbitrates on.
        let start = std::time::Instant::now();
        self.compiled.get(&n).expect("inserted above").apply(x)?;
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let backend = self.cost.name();
        if self
            .wisdom
            .measured_ns(n, backend)
            .is_none_or(|best| ns < best)
        {
            // Entry existence was just established by `plan`; a racing
            // absence is harmless (measurement is advisory evidence).
            let _ = self.wisdom.record_measurement(n, backend, ns);
        }
        Ok(())
    }

    /// In-place **batched** transform: `x` viewed as `rows` adjacent
    /// contiguous transforms of size `x.len() / rows`, each mapped
    /// through the best known plan for that size via
    /// [`CompiledPlan::apply_batch`] — past the resolved row-block
    /// threshold the batch runs the cross-transform lane path, below it
    /// (or under `WHT_NO_BATCH`) every row replays the per-transform
    /// schedule, bit-identically either way.
    ///
    /// # Errors
    /// [`WhtError::InvalidConfig`] unless `rows >= 1` divides `x.len()`
    /// and the row length is a power of two with exponent in `1..=MAX_N`;
    /// propagates search errors on cold sizes.
    pub fn transform_batch<T: Scalar>(&mut self, x: &mut [T], rows: usize) -> Result<(), WhtError> {
        if rows == 0 || !x.len().is_multiple_of(rows) {
            return Err(WhtError::InvalidConfig(format!(
                "batch of {rows} rows does not divide {} elements",
                x.len()
            )));
        }
        let len = x.len() / rows;
        if len < 2 || !len.is_power_of_two() {
            return Err(WhtError::InvalidConfig(format!(
                "batched row length {len} is not a power of two >= 2"
            )));
        }
        let n = len.trailing_zeros();
        if n > wht_core::MAX_N {
            return Err(WhtError::SizeTooLarge { n });
        }
        if !self.compiled.contains_key(&n) {
            let plan = self.plan(n)?.clone();
            let exec = self.resolved_exec(n);
            self.compiled
                .insert(n, CompiledPlan::compile_exec(&plan, &exec));
        }
        self.compiled
            .get(&n)
            .expect("inserted above")
            .apply_batch(x, rows)
    }
}

impl<C: VectorCost> Planner<C> {
    /// Re-aim the planner at a named multi-objective weighting (builder
    /// style): the cost backend's collapse weights become
    /// [`VectorCost::objective_weights`] for `objective`, the memo and
    /// compiled-schedule caches are dropped (their entries were scored
    /// under the old collapse), and every wisdom entry this planner
    /// records from now on carries the objective — so an importer can
    /// tell a latency-tuned plan from a memory-tuned one, and a planner
    /// aimed at one objective never silently replays the other's plans
    /// ([`Tuning::objective`]).
    #[must_use]
    pub fn with_objective(mut self, objective: CostObjective) -> Self {
        self.cost.set_objective(objective);
        self.objective = Some(objective);
        self.memo.clear();
        self.compiled.clear();
        self
    }
}

/// How a recorded relayout tuning replays: `0` means the recorder's
/// executor did not gather this size (stays off), a nonzero budget
/// replays at the engine's floor (`min_passes = 2`, no size gate) rather
/// than the default policy's knobs — the record only exists because the
/// recorder's schedule actually gathered, and a recorder tuned with
/// `min_passes` below the default must not have its configuration
/// silently dropped on import.
fn replay_relayout(budget: u64) -> RelayoutPolicy {
    if budget == 0 {
        RelayoutPolicy::disabled()
    } else {
        RelayoutPolicy {
            budget_elems: usize::try_from(budget).unwrap_or(usize::MAX),
            min_elems: 0,
            min_passes: 2,
        }
    }
}

/// How a recorded batch tuning replays: `0` means the recorder's executor
/// built no batch schedule for this size (stays off); a nonzero record
/// replays the recorder's row-block threshold exactly.
fn replay_batch(block: u64) -> BatchPolicy {
    if block == 0 {
        BatchPolicy::disabled()
    } else {
        BatchPolicy::new(usize::try_from(block).unwrap_or(usize::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CombinedModelCost, InstructionCost};
    use wht_core::{apply_plan, max_abs_diff, naive_wht};

    #[test]
    fn transform_matches_reference_and_amortizes_search() {
        let mut planner = Planner::new(InstructionCost::default());
        let input: Vec<f64> = (0..512)
            .map(|j| ((j * 37 + 5) % 64) as f64 - 32.0)
            .collect();
        let want = naive_wht(&input);
        let mut x = input.clone();
        planner.transform(&mut x).unwrap();
        assert!(max_abs_diff(&x, &want) < 1e-9);
        let cold_evals = planner.evaluations();
        assert!(cold_evals > 0, "cold path must have searched");

        for _ in 0..3 {
            let mut y = input.clone();
            planner.transform(&mut y).unwrap();
            assert!(max_abs_diff(&y, &want) < 1e-9);
        }
        assert_eq!(
            planner.evaluations(),
            cold_evals,
            "warm path must not search"
        );
    }

    #[test]
    fn dp_table_becomes_wisdom_for_all_smaller_sizes() {
        let mut planner = Planner::new(InstructionCost::default());
        planner.plan(9).unwrap();
        for m in 1..=9u32 {
            let plan = planner
                .wisdom()
                .get(m, "instruction-model")
                .expect("size recorded");
            assert_eq!(plan.n(), m);
        }
        // A smaller size is now free.
        let evals = planner.evaluations();
        planner.plan(5).unwrap();
        assert_eq!(planner.evaluations(), evals);
    }

    #[test]
    fn wisdom_round_trips_through_json_and_warms_a_new_planner() {
        let mut tuned = Planner::new(CombinedModelCost::paper_default());
        tuned.plan(10).unwrap();
        let json = tuned.wisdom().to_json();

        let wisdom = Wisdom::from_json(&json).unwrap();
        assert_eq!(&wisdom, tuned.wisdom());

        let mut warm = Planner::new(CombinedModelCost::paper_default()).with_wisdom(wisdom);
        let mut x: Vec<f64> = (0..1024).map(|j| (j % 11) as f64).collect();
        let want = naive_wht(&x);
        warm.transform(&mut x).unwrap();
        assert!(max_abs_diff(&x, &want) < 1e-9);
        assert_eq!(
            warm.evaluations(),
            0,
            "imported wisdom must skip search entirely"
        );
    }

    #[test]
    fn with_wisdom_invalidates_compiled_schedules() {
        let mut planner = Planner::new(InstructionCost::default());
        let mut x: Vec<f64> = (0..256).map(|j| (j % 5) as f64).collect();
        planner.transform(&mut x).unwrap(); // compiles the DP winner for n=8
        assert!(!planner.compiled.is_empty());

        // Import wisdom that names a *different* plan for n=8.
        let mut wisdom = Wisdom::new();
        let imported = Plan::iterative(8).unwrap();
        wisdom
            .insert(8, "instruction-model", imported.clone())
            .unwrap();
        let evals_before_import = planner.evaluations();
        let mut planner = planner.with_wisdom(wisdom);
        assert!(
            planner.compiled.is_empty(),
            "stale schedules must not survive a wisdom import"
        );
        planner.transform(&mut x).unwrap();
        assert_eq!(
            planner.compiled.get(&8),
            Some(&CompiledPlan::compile_exec(
                &imported,
                &planner.resolved_exec(8)
            )),
            "warm transform must execute the imported plan"
        );
        assert_eq!(
            planner.evaluations(),
            evals_before_import,
            "imported wisdom covers the size; no new search"
        );
    }

    #[test]
    fn wisdom_records_the_tile_budget_and_round_trips_it() {
        // The planner stamps its fusion budget on every entry it records.
        let mut planner =
            Planner::new(InstructionCost::default()).with_fusion(FusionPolicy::new(1 << 9));
        planner.plan(8).unwrap();
        for m in 1..=8u32 {
            assert_eq!(
                planner.wisdom().fuse_budget(m, "instruction-model"),
                Some(1 << 9)
            );
        }
        // ...and the budget survives the JSON round trip.
        let back = Wisdom::from_json(&planner.wisdom().to_json()).unwrap();
        assert_eq!(&back, planner.wisdom());
        assert_eq!(back.fuse_budget(8, "instruction-model"), Some(1 << 9));

        // A fusion-off planner records budget 0, distinct from "not
        // recorded".
        let mut off =
            Planner::new(InstructionCost::default()).with_fusion(FusionPolicy::disabled());
        off.plan(4).unwrap();
        let back = Wisdom::from_json(&off.wisdom().to_json()).unwrap();
        assert_eq!(back.fuse_budget(4, "instruction-model"), Some(0));
        let mut plain = Wisdom::new();
        plain
            .insert(4, "instruction-model", Plan::iterative(4).unwrap())
            .unwrap();
        assert_eq!(plain.fuse_budget(4, "instruction-model"), None);
        assert!(plain.tuning(4, "instruction-model").unwrap().is_empty());
    }

    #[test]
    fn recorded_budget_overrides_the_importing_planners_policy() {
        // Tune with fusion off; a default (fusion-on) importer must still
        // compile that size unfused, honoring the recorded configuration.
        let mut tuned =
            Planner::new(InstructionCost::default()).with_fusion(FusionPolicy::disabled());
        tuned.plan(10).unwrap();
        let wisdom = Wisdom::from_json(&tuned.wisdom().to_json()).unwrap();

        let mut warm = Planner::new(InstructionCost::default()).with_wisdom(wisdom);
        let mut x: Vec<f64> = (0..1024).map(|j| (j % 13) as f64).collect();
        let want = naive_wht(&x);
        warm.transform(&mut x).unwrap();
        assert!(max_abs_diff(&x, &want) < 1e-9);
        assert!(
            !warm.compiled.get(&10).unwrap().is_fused(),
            "recorded budget 0 must win over the importer's default policy"
        );
        // Version-1 wisdom without the field still loads (budget absent).
        let legacy =
            "{\"version\":1,\"entries\":[{\"n\":4,\"backend\":\"x\",\"plan\":\"split[small[2],small[2]]\"}]}";
        let w = Wisdom::from_json(legacy).unwrap();
        assert_eq!(w.fuse_budget(4, "x"), None);
    }

    #[test]
    fn disabled_default_policy_is_a_kill_switch_over_recorded_budgets() {
        // An *unpinned* disabled policy is what WHT_NO_FUSE=1 produces at
        // construction (simulated here by setting the private fields —
        // tests must not mutate process env under a threaded test
        // runner). Imported wisdom carrying a fused budget must not
        // re-enable fusion past the kill switch.
        let mut wisdom = Wisdom::new();
        wisdom
            .insert_with_budget(
                10,
                "instruction-model",
                Plan::iterative(10).unwrap(),
                Some(1 << 9),
            )
            .unwrap();
        let mut planner = Planner::new(InstructionCost::default()).with_wisdom(wisdom);
        planner.exec.fusion = FusionPolicy::disabled();
        planner.pinned.fusion = false;
        let mut x: Vec<f64> = (0..1024).map(|j| (j % 5) as f64).collect();
        planner.transform(&mut x).unwrap();
        assert!(
            !planner.compiled.get(&10).unwrap().is_fused(),
            "a disabled default policy must beat the recorded budget"
        );
    }

    #[test]
    fn with_fusion_pins_the_policy_over_recorded_budgets() {
        // A planner that already recorded a fused budget for a size must
        // still honor a later explicit opt-out — with_fusion pins the
        // policy, beating the planner's own earlier wisdom.
        let mut planner =
            Planner::new(InstructionCost::default()).with_fusion(FusionPolicy::new(1 << 12));
        let mut x: Vec<f64> = (0..4096).map(|j| (j % 7) as f64).collect();
        planner.transform(&mut x).unwrap();
        assert!(planner.compiled.get(&12).unwrap().is_fused());
        assert_eq!(
            planner.wisdom().fuse_budget(12, "instruction-model"),
            Some(1 << 12)
        );

        let mut planner = planner.with_fusion(FusionPolicy::disabled());
        let mut y: Vec<f64> = (0..4096).map(|j| (j % 7) as f64).collect();
        planner.transform(&mut y).unwrap();
        assert!(
            !planner.compiled.get(&12).unwrap().is_fused(),
            "explicit with_fusion(disabled) must beat the recorded budget"
        );
        // And flipping back on works the same way.
        let mut planner = planner.with_fusion(FusionPolicy::unbounded());
        let mut z: Vec<f64> = (0..4096).map(|j| (j % 7) as f64).collect();
        planner.transform(&mut z).unwrap();
        assert!(planner.compiled.get(&12).unwrap().is_fused());
    }

    #[test]
    fn wisdom_records_the_kernel_backend_and_round_trips_it() {
        // The planner stamps its SIMD policy on every entry it records...
        let mut planner =
            Planner::new(InstructionCost::default()).with_simd(SimdPolicy::disabled());
        planner.plan(8).unwrap();
        for m in 1..=8u32 {
            assert_eq!(
                planner.wisdom().simd_enabled(m, "instruction-model"),
                Some(false)
            );
        }
        // ...and the record survives the JSON round trip.
        let back = Wisdom::from_json(&planner.wisdom().to_json()).unwrap();
        assert_eq!(&back, planner.wisdom());
        assert_eq!(back.simd_enabled(8, "instruction-model"), Some(false));

        // An importing planner with an unpinned enabled policy replays the
        // recorded scalar choice.
        let mut warm = Planner::new(InstructionCost::default()).with_wisdom(back);
        warm.exec.simd = SimdPolicy::auto();
        warm.pinned.simd = false;
        let mut x: Vec<f64> = (0..256).map(|j| (j % 7) as f64).collect();
        warm.transform(&mut x).unwrap();
        assert!(
            !warm.compiled.get(&8).unwrap().is_simd(),
            "recorded scalar tuning must win over the importer's default"
        );

        // Entries without the field (legacy wisdom) record no choice.
        let legacy =
            "{\"version\":1,\"entries\":[{\"n\":4,\"backend\":\"x\",\"plan\":\"split[small[2],small[2]]\"}]}";
        let w = Wisdom::from_json(legacy).unwrap();
        assert_eq!(w.simd_enabled(4, "x"), None);
    }

    #[test]
    fn simd_kill_switch_and_pinning_beat_recorded_backends() {
        // Imported wisdom tuned with the lane kernels must not re-enable
        // them past an (unpinned) disabled policy — what WHT_NO_SIMD=1
        // produces at construction.
        let mut wisdom = Wisdom::new();
        wisdom
            .insert_with_tuning(
                10,
                "instruction-model",
                Plan::iterative(10).unwrap(),
                Tuning {
                    simd: Some(true),
                    ..Tuning::default()
                },
            )
            .unwrap();
        let mut planner = Planner::new(InstructionCost::default()).with_wisdom(wisdom.clone());
        planner.exec.simd = SimdPolicy::disabled();
        planner.pinned.simd = false;
        let mut x: Vec<f64> = (0..1024).map(|j| (j % 5) as f64).collect();
        planner.transform(&mut x).unwrap();
        assert!(
            !planner.compiled.get(&10).unwrap().is_simd(),
            "a disabled default policy must beat the recorded backend"
        );

        // And an explicit with_simd pin beats the record in both
        // directions.
        let mut pinned = Planner::new(InstructionCost::default())
            .with_wisdom(wisdom)
            .with_simd(SimdPolicy::disabled());
        let mut y: Vec<f64> = (0..1024).map(|j| (j % 5) as f64).collect();
        pinned.transform(&mut y).unwrap();
        assert!(!pinned.compiled.get(&10).unwrap().is_simd());
        let mut repinned = pinned.with_simd(SimdPolicy::auto());
        let mut z: Vec<f64> = (0..1024).map(|j| (j % 5) as f64).collect();
        repinned.transform(&mut z).unwrap();
        assert!(repinned.compiled.get(&10).unwrap().is_simd());
    }

    #[test]
    fn wisdom_records_relayout_tuning_and_round_trips_it() {
        // The record is read off the compiled schedule itself: for every
        // size the recorded budget is nonzero exactly where this
        // planner's executor would actually relayout that size's plan —
        // a policy knob (min_passes) or a short-tailed DP winner that
        // declines relayout must record 0, whatever the size gates say.
        let mut planner = Planner::new(InstructionCost::default())
            .with_fusion(FusionPolicy::new(1 << 6))
            .with_relayout(RelayoutPolicy::eager(1 << 9));
        planner.plan(14).unwrap();
        for m in 1..=14u32 {
            let plan_m = planner
                .wisdom()
                .get(m, "instruction-model")
                .unwrap()
                .clone();
            let executed = CompiledPlan::compile(&plan_m)
                .fuse(&planner.fusion())
                .relayout(&planner.relayout())
                .has_relayout();
            assert_eq!(
                planner.wisdom().relayout_budget(m, "instruction-model"),
                Some(if executed { 1 << 9 } else { 0 }),
                "record must match the executed schedule at n = {m}"
            );
        }
        assert_eq!(
            planner.wisdom().relayout_budget(8, "instruction-model"),
            Some(0),
            "sizes inside the block budget cannot gather and record 0"
        );
        // And a policy whose min_passes declines every tail records 0
        // everywhere even though its size gates pass.
        let mut never = Planner::new(InstructionCost::default())
            .with_fusion(FusionPolicy::new(1 << 6))
            .with_relayout(RelayoutPolicy {
                min_passes: 99,
                ..RelayoutPolicy::eager(1 << 9)
            });
        never.plan(14).unwrap();
        for m in 1..=14u32 {
            assert_eq!(
                never.wisdom().relayout_budget(m, "instruction-model"),
                Some(0),
                "a declining policy must not record a tuning it never ran"
            );
        }
        // ...and the record survives the JSON round trip.
        let back = Wisdom::from_json(&planner.wisdom().to_json()).unwrap();
        assert_eq!(&back, planner.wisdom());

        // An importing planner with an unpinned default policy replays
        // the recorded tuning: the served schedule relayouts at n = 14
        // even though the default policy's size floor would decline it.
        // (The recorded plan is pinned to a many-factor shape so its
        // fused schedule actually has a gatherable tail.)
        let mut imported = Wisdom::new();
        imported
            .insert_with_tuning(
                14,
                "instruction-model",
                Plan::iterative(14).unwrap(),
                Tuning {
                    fuse_budget: Some(1 << 6),
                    relayout: Some(1 << 9),
                    ..Tuning::default()
                },
            )
            .unwrap();
        let mut warm = Planner::new(InstructionCost::default()).with_wisdom(imported);
        // Unpinned default policy regardless of the CI leg's env (the
        // WHT_NO_RELAYOUT leg would otherwise kill-switch the replay,
        // which has its own test below).
        warm.exec.relayout = RelayoutPolicy::default();
        warm.pinned.relayout = false;
        let mut x: Vec<f64> = (0..1 << 14).map(|j| (j % 11) as f64 - 5.0).collect();
        let want = naive_wht(&x);
        warm.transform(&mut x).unwrap();
        assert!(max_abs_diff(&x, &want) < 1e-9);
        assert!(
            warm.compiled.get(&14).unwrap().has_relayout(),
            "recorded relayout tuning must be replayed by the importer"
        );
        assert_eq!(warm.evaluations(), 0);
    }

    #[test]
    fn recorded_relayout_replays_at_the_engine_floor_not_the_default_knobs() {
        // A recorder tuned with min_passes = 2 can gather a 2-pass tail
        // and record its budget; the importer must replay that exact
        // configuration instead of re-gating it through the default
        // min_passes = 3 (which would silently drop the tuning).
        // binary_iterative(10, 2) fused at 2^6 leaves a 2-pass tail
        // (strides 64 and 256) that a 2^9 block budget can gather.
        let plan = Plan::binary_iterative(10, 2).unwrap();
        let two_pass_tail = CompiledPlan::compile(&plan)
            .fuse(&FusionPolicy::new(1 << 6))
            .relayout(&RelayoutPolicy {
                min_passes: 2,
                ..RelayoutPolicy::eager(1 << 9)
            });
        assert!(two_pass_tail.has_relayout(), "test precondition");
        let mut wisdom = Wisdom::new();
        wisdom
            .insert_with_tuning(
                10,
                "instruction-model",
                plan,
                Tuning {
                    fuse_budget: Some(1 << 6),
                    relayout: Some(1 << 9),
                    ..Tuning::default()
                },
            )
            .unwrap();
        let mut warm = Planner::new(InstructionCost::default()).with_wisdom(wisdom);
        warm.exec.relayout = RelayoutPolicy::default();
        warm.pinned.relayout = false;
        let mut x: Vec<f64> = (0..1 << 10).map(|j| (j % 9) as f64 - 4.0).collect();
        let want = naive_wht(&x);
        warm.transform(&mut x).unwrap();
        assert!(max_abs_diff(&x, &want) < 1e-9);
        assert!(
            warm.compiled.get(&10).unwrap().has_relayout(),
            "a recorded 2-pass-tail tuning must survive import"
        );
    }

    #[test]
    fn relayout_kill_switch_and_pinning_beat_recorded_tuning() {
        // Imported wisdom tuned with relayout must not re-enable it past
        // an (unpinned) disabled policy — what WHT_NO_RELAYOUT=1 produces
        // at construction.
        let mut wisdom = Wisdom::new();
        wisdom
            .insert_with_tuning(
                14,
                "instruction-model",
                Plan::iterative(14).unwrap(),
                Tuning {
                    fuse_budget: Some(1 << 6),
                    relayout: Some(1 << 9),
                    ..Tuning::default()
                },
            )
            .unwrap();
        let mut planner = Planner::new(InstructionCost::default()).with_wisdom(wisdom.clone());
        planner.exec.relayout = RelayoutPolicy::disabled();
        planner.pinned.relayout = false;
        let mut x: Vec<f64> = (0..1 << 14).map(|j| (j % 5) as f64).collect();
        planner.transform(&mut x).unwrap();
        assert!(
            !planner.compiled.get(&14).unwrap().has_relayout(),
            "a disabled default policy must beat the recorded tuning"
        );

        // And an explicit with_relayout pin beats the record both ways.
        let mut pinned = Planner::new(InstructionCost::default())
            .with_wisdom(wisdom)
            .with_relayout(RelayoutPolicy::disabled());
        let mut y: Vec<f64> = (0..1 << 14).map(|j| (j % 5) as f64).collect();
        pinned.transform(&mut y).unwrap();
        assert!(!pinned.compiled.get(&14).unwrap().has_relayout());
        let mut repinned = pinned.with_relayout(RelayoutPolicy::eager(1 << 9));
        let mut z: Vec<f64> = (0..1 << 14).map(|j| (j % 5) as f64).collect();
        repinned.transform(&mut z).unwrap();
        assert!(repinned.compiled.get(&14).unwrap().has_relayout());
    }

    #[test]
    fn version_1_wisdom_migrates_and_round_trips_as_current() {
        // A version-1 store (pre-relayout) must load — its entries carry
        // no relayout, recodelet, batch, or objective choice — and
        // re-serialize as the current version without bricking anything.
        let legacy = "{\"version\":1,\"entries\":[{\"n\":4,\"backend\":\"x\",\
                       \"plan\":\"split[small[2],small[2]]\",\"fuse_budget\":512,\
                       \"simd\":true}]}";
        let w = Wisdom::from_json(legacy).unwrap();
        assert_eq!(w.fuse_budget(4, "x"), Some(512));
        assert_eq!(w.simd_enabled(4, "x"), Some(true));
        assert_eq!(w.relayout_budget(4, "x"), None);
        assert_eq!(w.tuning(4, "x").unwrap().recodelet, None);
        assert_eq!(w.batch_block(4, "x"), None);
        assert_eq!(w.objective(4, "x"), None);
        let json = w.to_json();
        assert!(json.contains("\"version\": 7"), "{json}");
        assert!(json.contains("\"tuning\""), "{json}");
        let back = Wisdom::from_json(&json).unwrap();
        assert_eq!(back, w);
        // Future versions stay rejected.
        assert!(Wisdom::from_json("{\"version\":8,\"entries\":[]}").is_err());
    }

    #[test]
    fn version_3_wisdom_migrates_and_records_no_batch_choice() {
        // A version-3 store (nested tuning, pre-batch) must load with its
        // record intact and no batch choice — the reader's own policy
        // applies — and re-serialize as the current version, replaying
        // identically.
        let legacy = "{\"version\":3,\"entries\":[{\"n\":12,\"backend\":\
                      \"instruction-model\",\"plan\":\"split[small[4],small[4],\
                      small[4]]\",\"tuning\":{\"fuse_budget\":4096,\"simd\":true,\
                      \"relayout\":0,\"recodelet\":true}}]}";
        let w = Wisdom::from_json(legacy).unwrap();
        assert_eq!(w.fuse_budget(12, "instruction-model"), Some(4096));
        assert_eq!(
            w.batch_block(12, "instruction-model"),
            None,
            "a stage the blob predates records no choice"
        );
        let migrated = Wisdom::from_json(&w.to_json()).unwrap();
        assert_eq!(migrated, w);
        // The importer's unpinned default batch policy applies, and the
        // migrated replay is bit-identical to a fresh computation.
        let mut warm = Planner::new(InstructionCost::default()).with_wisdom(migrated);
        warm.exec = ExecPolicy::default();
        warm.pinned = PinnedKnobs::default();
        assert_eq!(
            warm.resolved_exec(12).batch,
            BatchPolicy::default(),
            "no recorded choice -> the reader's default policy"
        );
        let mut x: Vec<f64> = (0..1 << 12).map(|j| (j % 13) as f64 - 6.0).collect();
        let want = naive_wht(&x);
        warm.transform(&mut x).unwrap();
        assert!(max_abs_diff(&x, &want) < 1e-9, "migrated replay is exact");
        assert_eq!(warm.evaluations(), 0);
    }

    #[test]
    fn version_2_wisdom_migrates_and_replays_like_the_recorder() {
        // A version-2 store (flat fuse_budget/simd/relayout columns, the
        // PR 4 format) must load with every recorded knob intact...
        let legacy = "{\"version\":2,\"entries\":[{\"n\":14,\"backend\":\
                      \"instruction-model\",\"plan\":\"split[small[1],small[1],\
                      small[1],small[1],small[1],small[1],small[1],small[1],\
                      small[1],small[1],small[1],small[1],small[1],small[1]]\",\
                      \"fuse_budget\":64,\"simd\":true,\"relayout\":512}]}";
        let w = Wisdom::from_json(legacy).unwrap();
        assert_eq!(w.fuse_budget(14, "instruction-model"), Some(64));
        assert_eq!(w.simd_enabled(14, "instruction-model"), Some(true));
        assert_eq!(w.relayout_budget(14, "instruction-model"), Some(512));
        assert_eq!(
            w.tuning(14, "instruction-model").unwrap().recodelet,
            None,
            "a stage the blob predates records no choice"
        );
        // ...re-serialize as version 3...
        let migrated = Wisdom::from_json(&w.to_json()).unwrap();
        assert_eq!(migrated, w);
        // ...and replay the recorded configuration: the resolved policy
        // matches the legacy per-knob resolution exactly, and with the
        // post-v2 stages pinned off, the compiled schedule is *equal* to
        // what the pre-pipeline executor compiled for this blob.
        let mut warm = Planner::new(InstructionCost::default()).with_wisdom(migrated);
        warm.exec = ExecPolicy::default();
        warm.pinned = PinnedKnobs {
            recodelet: true,
            batch: true,
            ..PinnedKnobs::default()
        };
        warm.exec.recodelet = RecodeletPolicy::disabled();
        warm.exec.batch = BatchPolicy::disabled();
        let resolved = warm.resolved_exec(14);
        assert_eq!(resolved.fusion, FusionPolicy::new(64));
        assert!(resolved.simd.enabled());
        assert_eq!(resolved.relayout, replay_relayout(512));
        let mut x: Vec<f64> = (0..1 << 14).map(|j| (j % 11) as f64 - 5.0).collect();
        let want = naive_wht(&x);
        warm.transform(&mut x).unwrap();
        assert!(max_abs_diff(&x, &want) < 1e-9, "migrated replay is exact");
        let plan = warm.wisdom().get(14, "instruction-model").unwrap().clone();
        assert_eq!(
            warm.compiled.get(&14).unwrap(),
            &CompiledPlan::compile_with(
                &plan,
                &FusionPolicy::new(64),
                &replay_relayout(512),
                &SimdPolicy::auto()
            ),
            "v2 blob + pinned-off later stages = the pre-refactor schedule, exactly"
        );
        // With the importer's default (unpinned) tail policy the schedule
        // additionally re-codelets — and output bits cannot change.
        let mut modern = Planner::new(InstructionCost::default())
            .with_wisdom(Wisdom::from_json(legacy).unwrap());
        modern.exec = ExecPolicy::default();
        modern.pinned = PinnedKnobs::default();
        let mut y: Vec<f64> = (0..1 << 14).map(|j| (j % 11) as f64 - 5.0).collect();
        modern.transform(&mut y).unwrap();
        assert_eq!(
            y, x,
            "re-codeleted replay of migrated wisdom is bit-identical"
        );
        assert!(modern.compiled.get(&14).unwrap().has_recodeleted());
    }

    #[test]
    fn unknown_json_fields_are_tolerated() {
        // Forward compatibility: a store written by a newer build with
        // extra tuning fields must still load here — unknown fields are
        // ignored, known ones are honored.
        let future = "{\"version\":3,\"future_knob\":\"xyz\",\"entries\":[{\"n\":4,\
                      \"backend\":\"x\",\"plan\":\"split[small[2],small[2]]\",\
                      \"tuning\":{\"fuse_budget\":64,\"simd\":false,\"relayout\":32,\
                      \"recodelet\":true,\"prefetch_distance\":8}}]}";
        let w = Wisdom::from_json(future).unwrap();
        assert_eq!(w.fuse_budget(4, "x"), Some(64));
        assert_eq!(w.simd_enabled(4, "x"), Some(false));
        assert_eq!(w.relayout_budget(4, "x"), Some(32));
        assert_eq!(w.tuning(4, "x").unwrap().recodelet, Some(true));
    }

    #[test]
    fn recodelet_resolves_through_the_same_precedence_rule() {
        // Recorded off beats the importer's default-on...
        let mut wisdom = Wisdom::new();
        wisdom
            .insert_with_tuning(
                14,
                "instruction-model",
                Plan::iterative(14).unwrap(),
                Tuning {
                    fuse_budget: Some(1 << 6),
                    relayout: Some(1 << 9),
                    recodelet: Some(false),
                    ..Tuning::default()
                },
            )
            .unwrap();
        let mut planner = Planner::new(InstructionCost::default()).with_wisdom(wisdom.clone());
        planner.exec = ExecPolicy::default();
        planner.pinned = PinnedKnobs::default();
        let mut x: Vec<f64> = (0..1 << 14).map(|j| (j % 5) as f64).collect();
        planner.transform(&mut x).unwrap();
        let compiled = planner.compiled.get(&14).unwrap();
        assert!(compiled.has_relayout());
        assert!(
            !compiled.has_recodeleted(),
            "recorded recodelet=false must replay per-factor"
        );
        // ...an unpinned disabled default is a kill switch over a
        // recorded on...
        let mut on_record = Wisdom::new();
        on_record
            .insert_with_tuning(
                14,
                "instruction-model",
                Plan::iterative(14).unwrap(),
                Tuning {
                    fuse_budget: Some(1 << 6),
                    relayout: Some(1 << 9),
                    recodelet: Some(true),
                    ..Tuning::default()
                },
            )
            .unwrap();
        let mut killed = Planner::new(InstructionCost::default()).with_wisdom(on_record);
        killed.exec = ExecPolicy::default();
        killed.exec.recodelet = RecodeletPolicy::disabled();
        killed.pinned = PinnedKnobs::default();
        assert!(!killed.resolved_exec(14).recodelet.enabled());
        // ...and an explicit pin beats the record both ways. (The other
        // knobs are set to unpinned defaults by hand so the recorded
        // fusion/relayout tuning replays identically on every CI leg.)
        let mut pinned = Planner::new(InstructionCost::default()).with_wisdom(wisdom);
        pinned.exec = ExecPolicy::default();
        pinned.pinned = PinnedKnobs {
            recodelet: true,
            ..PinnedKnobs::default()
        };
        assert!(pinned.resolved_exec(14).recodelet.enabled());
        let mut y: Vec<f64> = (0..1 << 14).map(|j| (j % 5) as f64).collect();
        pinned.transform(&mut y).unwrap();
        assert!(pinned.compiled.get(&14).unwrap().has_recodeleted());
        assert_eq!(y, x, "re-codeleting never changes output bits");
    }

    #[test]
    fn with_exec_pins_every_knob() {
        // Wisdom records a full executor configuration; with_exec must
        // beat all of it at once.
        let mut wisdom = Wisdom::new();
        wisdom
            .insert_with_tuning(
                14,
                "instruction-model",
                Plan::iterative(14).unwrap(),
                Tuning {
                    fuse_budget: Some(1 << 6),
                    simd: Some(true),
                    relayout: Some(1 << 9),
                    recodelet: Some(true),
                    batch: Some(16),
                    stream: Some(true),
                    objective: None,
                },
            )
            .unwrap();
        let mut planner = Planner::new(InstructionCost::default())
            .with_wisdom(wisdom)
            .with_exec(ExecPolicy::all_disabled());
        let resolved = planner.resolved_exec(14);
        assert!(!resolved.fusion.enabled());
        assert!(!resolved.simd.enabled());
        assert!(!resolved.relayout.enabled());
        assert!(!resolved.recodelet.enabled());
        assert!(!resolved.batch.enabled());
        assert!(!resolved.stream.enabled());
        let mut x: Vec<f64> = (0..1 << 14).map(|j| (j % 5) as f64).collect();
        let want = naive_wht(&x);
        planner.transform(&mut x).unwrap();
        assert!(max_abs_diff(&x, &want) < 1e-9);
        let compiled = planner.compiled.get(&14).unwrap();
        assert!(!compiled.is_fused() && !compiled.is_simd());
        assert!(!compiled.has_relayout() && !compiled.has_recodeleted());
        assert!(!compiled.is_batched());
    }

    #[test]
    fn wisdom_records_the_batch_threshold_and_round_trips_it() {
        // The record is read off the lowered schedule: small sizes build
        // the batch product and record the policy's threshold; a size
        // past the batch cap records 0 even though the policy is on.
        let mut planner = Planner::new(InstructionCost::default()).with_batch(BatchPolicy::new(32));
        planner.plan(10).unwrap();
        for m in 1..=10u32 {
            assert_eq!(
                planner.wisdom().batch_block(m, "instruction-model"),
                Some(32),
                "sizes within the cap record the threshold at n = {m}"
            );
        }
        let back = Wisdom::from_json(&planner.wisdom().to_json()).unwrap();
        assert_eq!(&back, planner.wisdom());
        assert_eq!(back.batch_block(10, "instruction-model"), Some(32));

        // A batch-off planner records 0, distinct from "not recorded".
        let mut off = Planner::new(InstructionCost::default()).with_batch(BatchPolicy::disabled());
        off.plan(4).unwrap();
        assert_eq!(off.wisdom().batch_block(4, "instruction-model"), Some(0));

        // A size past the batch cap records 0 under an enabled policy.
        let mut big = Planner::new(InstructionCost::default()).with_batch(BatchPolicy::new(32));
        big.plan(20).unwrap();
        assert_eq!(big.wisdom().batch_block(20, "instruction-model"), Some(0));
        assert_eq!(big.wisdom().batch_block(10, "instruction-model"), Some(32));

        // An importing planner with an unpinned default policy replays
        // the recorded threshold.
        let mut warm = Planner::new(InstructionCost::default()).with_wisdom(back);
        warm.exec.batch = BatchPolicy::default();
        warm.pinned.batch = false;
        assert_eq!(warm.resolved_exec(10).batch, BatchPolicy::new(32));
    }

    #[test]
    fn batch_kill_switch_and_pinning_beat_recorded_thresholds() {
        // Imported wisdom tuned with batching must not re-enable it past
        // an (unpinned) disabled policy — what WHT_NO_BATCH=1 produces at
        // construction.
        let mut wisdom = Wisdom::new();
        wisdom
            .insert_with_tuning(
                10,
                "instruction-model",
                Plan::iterative(10).unwrap(),
                Tuning {
                    batch: Some(16),
                    ..Tuning::default()
                },
            )
            .unwrap();
        let mut planner = Planner::new(InstructionCost::default()).with_wisdom(wisdom.clone());
        planner.exec.batch = BatchPolicy::disabled();
        planner.pinned.batch = false;
        assert!(
            !planner.resolved_exec(10).batch.enabled(),
            "a disabled default policy must beat the recorded threshold"
        );
        let mut x: Vec<f64> = (0..1024).map(|j| (j % 5) as f64).collect();
        planner.transform(&mut x).unwrap();
        assert!(!planner.compiled.get(&10).unwrap().is_batched());

        // Recorded off beats the importer's default-on...
        let mut off_record = Wisdom::new();
        off_record
            .insert_with_tuning(
                10,
                "instruction-model",
                Plan::iterative(10).unwrap(),
                Tuning {
                    batch: Some(0),
                    ..Tuning::default()
                },
            )
            .unwrap();
        let mut reader = Planner::new(InstructionCost::default()).with_wisdom(off_record);
        reader.exec.batch = BatchPolicy::default();
        reader.pinned.batch = false;
        assert!(!reader.resolved_exec(10).batch.enabled());

        // ...and an explicit with_batch pin beats the record both ways.
        let pinned = Planner::new(InstructionCost::default())
            .with_wisdom(wisdom)
            .with_batch(BatchPolicy::disabled());
        assert!(!pinned.resolved_exec(10).batch.enabled());
        let repinned = pinned.with_batch(BatchPolicy::new(8));
        assert_eq!(repinned.resolved_exec(10).batch, BatchPolicy::new(8));
    }

    #[test]
    fn transform_batch_matches_per_row_transforms() {
        // One warm planner, both entry points, every row bit-identical —
        // whatever executor configuration this CI leg resolves.
        let rows = 33; // deliberately not a multiple of any lane width
        let n = 7u32;
        let input: Vec<f64> = (0..rows << n)
            .map(|j| ((j * 31 + 7) % 23) as f64 - 11.0)
            .collect();
        let mut planner = Planner::new(InstructionCost::default());
        let mut batched = input.clone();
        planner.transform_batch(&mut batched, rows).unwrap();
        let mut per_row = input;
        for row in per_row.chunks_exact_mut(1 << n) {
            planner.transform(row).unwrap();
        }
        assert_eq!(batched, per_row, "batched rows must replay bit-identically");

        // Bad geometries are rejected.
        let mut x = vec![0.0f64; 96];
        assert!(planner.transform_batch(&mut x, 0).is_err());
        assert!(planner.transform_batch(&mut x, 5).is_err());
        assert!(planner.transform_batch(&mut x, 32).is_err(), "row length 3");
    }

    #[test]
    fn wisdom_save_load_files() {
        let mut planner = Planner::new(InstructionCost::default());
        planner.plan(8).unwrap();
        let dir = std::env::temp_dir().join("wht_wisdom_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("wisdom_{}.json", std::process::id()));
        planner.wisdom().save(&path).unwrap();
        let loaded = Wisdom::load(&path).unwrap();
        assert_eq!(&loaded, planner.wisdom());
        std::fs::remove_file(&path).ok();
        assert!(Wisdom::load(dir.join("missing.json")).is_err());
    }

    #[test]
    fn planner_transform_agrees_with_direct_plan_application() {
        let mut planner = Planner::new(InstructionCost::default());
        let mut via_planner: Vec<f64> = (0..256).map(|j| (j % 17) as f64 - 8.0).collect();
        let direct_input = via_planner.clone();
        planner.transform(&mut via_planner).unwrap();
        let plan = planner.plan(8).unwrap().clone();
        let mut direct = direct_input;
        apply_plan(&plan, &mut direct).unwrap();
        assert_eq!(
            via_planner, direct,
            "planner must run exactly its chosen plan"
        );
    }

    #[test]
    fn bad_lengths_rejected() {
        let mut planner = Planner::new(InstructionCost::default());
        let mut odd = vec![0.0f64; 24];
        assert!(planner.transform(&mut odd).is_err());
        let mut one = vec![0.0f64; 1];
        assert!(planner.transform(&mut one).is_err());
        assert_eq!(planner.evaluations(), 0);
    }

    #[test]
    fn malformed_wisdom_rejected() {
        assert!(Wisdom::from_json("not json").is_err());
        assert!(Wisdom::from_json("{\"version\":99,\"entries\":[]}").is_err());
        let bad_plan =
            "{\"version\":1,\"entries\":[{\"n\":4,\"backend\":\"x\",\"plan\":\"small[\"}]}";
        assert!(Wisdom::from_json(bad_plan).is_err());
        let wrong_size =
            "{\"version\":1,\"entries\":[{\"n\":4,\"backend\":\"x\",\"plan\":\"small[3]\"}]}";
        assert!(Wisdom::from_json(wrong_size).is_err());
    }

    #[test]
    fn version_4_wisdom_migrates_and_records_no_objective() {
        // A version-4 store (pre-objective) must load with its tuning
        // intact and no objective recorded — so a default-weighted reader
        // replays it, and an objective-aimed reader re-searches.
        let legacy = "{\"version\":4,\"entries\":[{\"n\":10,\"backend\":\
                      \"combined-model\",\"plan\":\"split[small[5],small[5]]\",\
                      \"tuning\":{\"fuse_budget\":4096,\"simd\":true,\
                      \"relayout\":0,\"recodelet\":true,\"batch\":0}}]}";
        let w = Wisdom::from_json(legacy).unwrap();
        assert_eq!(w.fuse_budget(10, "combined-model"), Some(4096));
        assert_eq!(
            w.objective(10, "combined-model"),
            None,
            "a field the blob predates records no choice"
        );
        let migrated = Wisdom::from_json(&w.to_json()).unwrap();
        assert_eq!(migrated, w);
        // A legacy (objective-less) planner serves the entry warm...
        let mut warm = Planner::new(CombinedModelCost::paper_default()).with_wisdom(w.clone());
        warm.plan(10).unwrap();
        assert_eq!(warm.evaluations(), 0);
        // ...while a planner aimed at an explicit objective treats it as
        // stale and re-searches.
        let mut aimed = Planner::new(CombinedModelCost::paper_default())
            .with_wisdom(w)
            .with_objective(CostObjective::Memory);
        aimed.plan(10).unwrap();
        assert!(aimed.evaluations() > 0);
    }

    #[test]
    fn objective_round_trips_through_wisdom() {
        // The acceptance contract: the planner selects among named
        // weightings via the vector-cost trait, and wisdom round-trips
        // the choice.
        let mut planner =
            Planner::new(CombinedModelCost::paper_default()).with_objective(CostObjective::Memory);
        planner.plan(12).unwrap();
        let backend = planner.backend_name();
        assert_eq!(
            planner.wisdom().objective(12, backend),
            Some(CostObjective::Memory)
        );
        let json = planner.wisdom().to_json();
        assert!(json.contains("\"objective\": \"Memory\""), "{json}");
        let reloaded = Wisdom::from_json(&json).unwrap();
        assert_eq!(reloaded.objective(12, backend), Some(CostObjective::Memory));
        // Same-objective importer: warm. Different objective: re-search.
        let mut same = Planner::new(CombinedModelCost::paper_default())
            .with_objective(CostObjective::Memory)
            .with_wisdom(reloaded.clone());
        same.plan(12).unwrap();
        assert_eq!(same.evaluations(), 0);
        let mut other = Planner::new(CombinedModelCost::paper_default())
            .with_objective(CostObjective::Latency)
            .with_wisdom(reloaded);
        other.plan(12).unwrap();
        assert!(other.evaluations() > 0);
        assert_eq!(
            other.wisdom().objective(12, backend),
            Some(CostObjective::Latency),
            "the stale entry is replaced under the new objective"
        );
    }

    #[test]
    fn objectives_select_different_plans_for_the_same_backend() {
        // Two weightings must be able to disagree about the best plan —
        // otherwise the multi-objective layer is a no-op. Under the
        // combined model, latency blends instructions with misses while
        // memory ignores instructions entirely, which flips the winner at
        // out-of-model-cache sizes.
        let n = 16;
        let mut latency =
            Planner::new(CombinedModelCost::paper_default()).with_objective(CostObjective::Latency);
        let lat_plan = latency.plan(n).unwrap().clone();
        let mut memory =
            Planner::new(CombinedModelCost::paper_default()).with_objective(CostObjective::Memory);
        let mem_plan = memory.plan(n).unwrap().clone();
        assert_ne!(
            lat_plan, mem_plan,
            "latency and memory objectives should pick different plans at n={n}"
        );
        // And each planner's explain names its memo-search provenance.
        let line = latency.explain(n).expect("searched this instance");
        assert!(line.contains("candidates"), "{line}");
    }

    #[test]
    fn planner_explain_reports_provenance_for_searched_and_replayed_sizes() {
        let mut planner = Planner::new(InstructionCost::default());
        assert_eq!(planner.explain(8), None, "nothing searched yet");
        planner.plan(8).unwrap();
        let line = planner.explain(8).expect("just searched");
        assert!(line.contains("2^8"), "{line}");
        assert!(
            !line.contains("replayed"),
            "live memo account, not a replay: {line}"
        );
        // Every smaller span was solved by the same memo search.
        assert!(planner.explain(3).is_some());
        // A wisdom-served planner replays the persisted provenance
        // (wisdom version 6): the account survives a process restart,
        // marked as a replay.
        let mut warm =
            Planner::new(InstructionCost::default()).with_wisdom(planner.wisdom().clone());
        warm.plan(8).unwrap();
        assert_eq!(warm.evaluations(), 0);
        let replayed = warm.explain(8).expect("persisted provenance");
        assert!(replayed.contains("[replayed from wisdom]"), "{replayed}");
        assert!(replayed.contains("2^8"), "{replayed}");
        // An entry with no recorded provenance (hand-inserted wisdom)
        // still reports nothing.
        let mut plain = Wisdom::new();
        plain
            .insert(4, "instruction-model", Plan::iterative(4).unwrap())
            .unwrap();
        let mut bare = Planner::new(InstructionCost::default()).with_wisdom(plain);
        bare.plan(4).unwrap();
        assert_eq!(bare.explain(4), None);
    }

    #[test]
    fn planner_explain_carries_the_verifier_verdict_once_compiled() {
        let mut planner = Planner::new(InstructionCost::default());
        planner.plan(8).unwrap();
        let line = planner.explain(8).expect("just searched");
        assert!(
            !line.contains("verified"),
            "no schedule compiled yet, nothing to verify: {line}"
        );
        let mut x = vec![1.0f64; 256];
        planner.transform(&mut x).unwrap();
        let line = planner.explain(8).expect("searched and compiled");
        assert!(
            line.contains("verified: bounds+disjointness+coverage+scratch"),
            "the serving schedule must prove clean: {line}"
        );
    }

    #[test]
    fn planner_memo_persists_across_sizes() {
        // The memo table must make the second, larger search cheaper than
        // a cold one: spans 1..=12 are reused, only 13..=16 are solved.
        let mut planner = Planner::new(InstructionCost::default());
        planner.plan(12).unwrap();
        let after_first = planner.evaluations();
        planner.plan(16).unwrap();
        let incremental = planner.evaluations() - after_first;
        let mut cold = Planner::new(InstructionCost::default());
        cold.plan(16).unwrap();
        assert!(
            incremental < cold.evaluations(),
            "incremental {incremental} should be under cold {}",
            cold.evaluations()
        );
        assert_eq!(planner.memo().solved_n(), 16);
    }
}
