//! The instruction-count model (reference \[5\] of the paper).
//!
//! The model assigns to every plan a cost computable *from the high-level
//! description alone* — the property the paper exploits to prune search
//! without running code. It has the divide-and-conquer form analyzed by
//! Hitczenko–Johnson–Huang:
//!
//! ```text
//! T(2^n) = sum_i 2^(n - ni) * T(2^ni) + overhead(n1, ..., nt)
//! ```
//!
//! We split the model into two pieces so that calibration and combination
//! stay clean:
//!
//! * [`op_counts`] — exact counts of each operation category a plan
//!   executes (pure structural recursion over the split tree);
//! * [`CostModel`] — per-category weights of the abstract RISC-like
//!   machine; [`instruction_count`] is the dot product.
//!
//! The instrumented interpreter in `wht-measure` counts the same categories
//! while actually executing the loop nest; `model == measurement` exactly is
//! a tested invariant of the workspace.

use serde::{Deserialize, Serialize};
use wht_core::Plan;

/// Exact operation counts for one execution of a plan.
///
/// Categories mirror the engine (`wht_core::engine`):
/// leaf codelet `small[k]` per call — `k*2^k` arithmetic ops, `2^k` loads,
/// `2^k` stores, `2*2^k` address computations; a split node per invocation —
/// one node entry, `t` outer-loop iterations, `r_i` `j`-loop iterations and
/// `r_i * s_i` `k`-loop iterations per child (the `k`-loop iteration count
/// equals the number of child invocations, `2^(n - ni)`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Butterfly additions/subtractions: always `n * 2^n` in total.
    pub arith: u64,
    /// Element loads (each codelet call loads its `2^k` inputs once).
    pub loads: u64,
    /// Element stores.
    pub stores: u64,
    /// Address computations (one per load and one per store).
    pub addr: u64,
    /// Leaf codelet invocations.
    pub leaf_calls: u64,
    /// Split-node invocations.
    pub node_invocations: u64,
    /// Outer (`i`) loop iterations, one per child per node invocation.
    pub outer_iters: u64,
    /// Middle (`j`) loop iterations.
    pub j_iters: u64,
    /// Inner (`k`) loop iterations == recursive-call count.
    pub k_iters: u64,
}

impl OpCounts {
    /// Component-wise sum.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // semantic sum of counters, not numeric Add
    pub fn add(self, other: OpCounts) -> OpCounts {
        OpCounts {
            arith: self.arith + other.arith,
            loads: self.loads + other.loads,
            stores: self.stores + other.stores,
            addr: self.addr + other.addr,
            leaf_calls: self.leaf_calls + other.leaf_calls,
            node_invocations: self.node_invocations + other.node_invocations,
            outer_iters: self.outer_iters + other.outer_iters,
            j_iters: self.j_iters + other.j_iters,
            k_iters: self.k_iters + other.k_iters,
        }
    }

    /// Scale every category by `factor` (a subtree invoked `factor` times).
    #[must_use]
    pub fn scale(self, factor: u64) -> OpCounts {
        OpCounts {
            arith: self.arith * factor,
            loads: self.loads * factor,
            stores: self.stores * factor,
            addr: self.addr * factor,
            leaf_calls: self.leaf_calls * factor,
            node_invocations: self.node_invocations * factor,
            outer_iters: self.outer_iters * factor,
            j_iters: self.j_iters * factor,
            k_iters: self.k_iters * factor,
        }
    }

    /// Total memory operations (loads + stores).
    pub fn mem_ops(&self) -> u64 {
        self.loads + self.stores
    }
}

/// Per-category instruction weights of the abstract machine.
///
/// The defaults model a RISC-like ISA: one instruction per arithmetic op,
/// load, store and address computation; small constants for call and loop
/// bookkeeping. The absolute scale is irrelevant for the paper's questions
/// (correlations and rankings); what matters is that the same weights are
/// used for the model and the instrumented measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Weight of one butterfly add/sub.
    pub arith: u64,
    /// Weight of one element load.
    pub load: u64,
    /// Weight of one element store.
    pub store: u64,
    /// Weight of one address computation.
    pub addr: u64,
    /// Fixed cost per leaf codelet invocation (call, prologue, epilogue).
    pub leaf_call: u64,
    /// Fixed cost per split-node invocation.
    pub node_invocation: u64,
    /// Cost per outer (`i`) loop iteration.
    pub outer_iter: u64,
    /// Cost per middle (`j`) loop iteration.
    pub j_iter: u64,
    /// Cost per inner (`k`) loop iteration (includes the recursive call
    /// dispatch).
    pub k_iter: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            arith: 1,
            load: 1,
            store: 1,
            addr: 1,
            leaf_call: 4,
            node_invocation: 6,
            outer_iter: 3,
            j_iter: 2,
            k_iter: 5,
        }
    }
}

impl CostModel {
    /// A pure-arithmetic model (only butterflies count): with it, every plan
    /// of size `2^n` costs exactly `n * 2^n` — useful as a baseline and in
    /// tests.
    pub fn flops_only() -> Self {
        CostModel {
            arith: 1,
            load: 0,
            store: 0,
            addr: 0,
            leaf_call: 0,
            node_invocation: 0,
            outer_iter: 0,
            j_iter: 0,
            k_iter: 0,
        }
    }

    /// Weighted total for a set of counts.
    pub fn total(&self, c: &OpCounts) -> u64 {
        self.arith * c.arith
            + self.load * c.loads
            + self.store * c.stores
            + self.addr * c.addr
            + self.leaf_call * c.leaf_calls
            + self.node_invocation * c.node_invocations
            + self.outer_iter * c.outer_iters
            + self.j_iter * c.j_iters
            + self.k_iter * c.k_iters
    }

    /// Cost of one invocation of the leaf codelet `small[k]`.
    pub fn leaf_cost(&self, k: u32) -> u64 {
        let size = 1u64 << k;
        self.arith * u64::from(k) * size
            + (self.load + self.store) * size
            + self.addr * 2 * size
            + self.leaf_call
    }

    /// The `overhead(n1..nt)` term of the recurrence for one invocation of a
    /// split node of size `2^n` with the given child exponents.
    ///
    /// Children execute right-to-left (engine convention): child `i` runs
    /// with `R_i = 2^(n1+...+n(i-1))` `j`-iterations and
    /// `S_i = 2^(n(i+1)+...+nt)` `k`-iterations per `j`, for
    /// `R_i * S_i = 2^(n - ni)` invocations.
    pub fn split_overhead(&self, n: u32, parts: &[u32]) -> u64 {
        let mut total = self.node_invocation + self.outer_iter * parts.len() as u64;
        let mut prefix = 0u32; // n1 + ... + n(i-1)
        for &ni in parts {
            let r_log = prefix; // log2 of R_i
            total += self.j_iter * (1u64 << r_log) + self.k_iter * (1u64 << (n - ni));
            prefix += ni;
        }
        total
    }
}

/// Exact operation counts for one execution of `plan` — the model side of
/// the "computable from the high-level description" property.
pub fn op_counts(plan: &Plan) -> OpCounts {
    match plan {
        Plan::Leaf { k } => {
            let size = 1u64 << *k;
            OpCounts {
                arith: u64::from(*k) * size,
                loads: size,
                stores: size,
                addr: 2 * size,
                leaf_calls: 1,
                ..OpCounts::default()
            }
        }
        Plan::Split { n, children } => {
            let mut total = OpCounts {
                node_invocations: 1,
                outer_iters: children.len() as u64,
                ..OpCounts::default()
            };
            // Right-to-left execution: child i has R_i = 2^(prefix sum
            // before i) j-iterations; k-iterations = invocations =
            // 2^(n - ni) regardless of order.
            let mut prefix = 0u32;
            for child in children {
                let ni = child.n();
                total.j_iters += 1u64 << prefix;
                total.k_iters += 1u64 << (n - ni);
                total = total.add(op_counts(child).scale(1u64 << (n - ni)));
                prefix += ni;
            }
            total
        }
    }
}

/// The instruction-count model: `cost.total(op_counts(plan))`.
pub fn instruction_count(plan: &Plan, cost: &CostModel) -> u64 {
    cost.total(&op_counts(plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wht_core::Plan;

    #[test]
    fn arithmetic_is_always_n_times_2n() {
        for n in 1..=12u32 {
            for plan in [
                Plan::iterative(n).unwrap(),
                Plan::right_recursive(n).unwrap(),
                Plan::left_recursive(n).unwrap(),
                Plan::balanced(n, 3).unwrap(),
            ] {
                let c = op_counts(&plan);
                assert_eq!(
                    c.arith,
                    u64::from(n) << n,
                    "plan {plan} has wrong flop count"
                );
                assert_eq!(
                    instruction_count(&plan, &CostModel::flops_only()),
                    u64::from(n) << n
                );
            }
        }
    }

    #[test]
    fn leaf_counts() {
        let c = op_counts(&Plan::Leaf { k: 3 });
        assert_eq!(c.arith, 24);
        assert_eq!(c.loads, 8);
        assert_eq!(c.stores, 8);
        assert_eq!(c.addr, 16);
        assert_eq!(c.leaf_calls, 1);
        assert_eq!(c.node_invocations, 0);
    }

    #[test]
    fn split_counts_by_hand() {
        // split[small[1], small[2]], n = 3 (children run right-to-left):
        //   child 2 (n2=2) runs first: R = 2, S = 1: 2 j-iters, 2 k-iters,
        //     2 leaf calls at stride 1;
        //   child 1 (n1=1) runs last: R = 1, S = 4: 1 j-iter, 4 k-iters,
        //     4 leaf calls at stride 4.
        let plan = Plan::split(vec![Plan::Leaf { k: 1 }, Plan::Leaf { k: 2 }]).unwrap();
        let c = op_counts(&plan);
        assert_eq!(c.node_invocations, 1);
        assert_eq!(c.outer_iters, 2);
        assert_eq!(c.j_iters, 1 + 2);
        assert_eq!(c.k_iters, 4 + 2);
        assert_eq!(c.leaf_calls, 4 + 2);
        assert_eq!(c.loads, 4 * 2 + 2 * 4);
        assert_eq!(c.arith, 4 * 2 + 2 * 8); // = 3 * 8 = n*2^n
    }

    #[test]
    fn iterative_has_fewest_instructions_of_canonicals() {
        // The paper (Fig. 2): iterative executes the fewest instructions of
        // the canonical algorithms at every size.
        let cost = CostModel::default();
        for n in 2..=16u32 {
            let it = instruction_count(&Plan::iterative(n).unwrap(), &cost);
            let rr = instruction_count(&Plan::right_recursive(n).unwrap(), &cost);
            let lr = instruction_count(&Plan::left_recursive(n).unwrap(), &cost);
            assert!(it <= rr, "n={n}: iterative {it} > right {rr}");
            assert!(it <= lr, "n={n}: iterative {it} > left {lr}");
        }
    }

    #[test]
    fn left_recursive_executes_more_instructions_than_right() {
        // Figure 2's ordering (and [5]'s analysis): the left-recursive
        // algorithm has the highest instruction count of the canonicals.
        // Structurally: at a node of size 2^m, left recursive runs its
        // small[1] child with R = 2^(m-1) j-iterations (plus the same
        // k-iterations as right recursive), while right recursive only ever
        // has R in {1, 2}; the leaf-call counts are identical.
        let cost = CostModel::default();
        for n in 3..=16u32 {
            let rr_plan = Plan::right_recursive(n).unwrap();
            let lr_plan = Plan::left_recursive(n).unwrap();
            let rr = instruction_count(&rr_plan, &cost);
            let lr = instruction_count(&lr_plan, &cost);
            assert!(lr > rr, "n={n}: left {lr} should exceed right {rr}");
            assert_eq!(
                op_counts(&rr_plan).leaf_calls,
                op_counts(&lr_plan).leaf_calls
            );
            assert!(op_counts(&lr_plan).j_iters > op_counts(&rr_plan).j_iters);
            assert_eq!(op_counts(&lr_plan).k_iters, op_counts(&rr_plan).k_iters);
        }
    }

    #[test]
    fn larger_base_cases_reduce_overhead() {
        // The "best" algorithms in the paper use larger unrolled base cases:
        // with default weights, small[4]-blocked plans beat small[1] flat
        // splits.
        let cost = CostModel::default();
        for n in 8..=16u32 {
            let flat = instruction_count(&Plan::iterative(n).unwrap(), &cost);
            let blocked = instruction_count(&Plan::binary_iterative(n, 4).unwrap(), &cost);
            assert!(
                blocked < flat,
                "n={n}: blocked {blocked} should beat flat {flat}"
            );
        }
    }

    #[test]
    fn split_overhead_matches_op_counts() {
        let plan = Plan::split(vec![
            Plan::Leaf { k: 2 },
            Plan::Leaf { k: 1 },
            Plan::Leaf { k: 3 },
        ])
        .unwrap();
        let cost = CostModel::default();
        // overhead(plan) = total - children contributions
        let total = instruction_count(&plan, &cost);
        let child_part: u64 = [(2u32, 16u64), (1, 32), (3, 8)]
            .iter()
            .map(|&(k, times)| cost.leaf_cost(k) * times)
            .sum();
        assert_eq!(total - child_part, cost.split_overhead(6, &[2, 1, 3]));
    }

    #[test]
    fn scale_and_add() {
        let a = op_counts(&Plan::Leaf { k: 1 });
        let doubled = a.scale(2);
        assert_eq!(doubled.arith, 2 * a.arith);
        let sum = a.add(a);
        assert_eq!(sum, doubled);
        assert_eq!(a.mem_ops(), 4);
    }
}
