//! # wht-models — performance models computable from the plan alone
//!
//! The paper's central objects: models that predict (imperfectly, but with
//! strong *correlation*) the performance of a WHT algorithm **from its
//! high-level description, without running it**, enabling search-space
//! pruning.
//!
//! * [`instructions`] — the instruction-count model of reference \[5\]:
//!   exact operation counts per category ([`op_counts`]) weighted by an
//!   abstract machine ([`CostModel`]);
//! * [`cache`] — the direct-mapped cache-miss model of reference \[8\]
//!   ([`analytic_misses`]);
//! * [`combined`] — the paper's `alpha*I + beta*M` linear model;
//! * [`theory`] — exact mean/variance/min/max of the instruction count
//!   over the algorithm space (the computable side of \[5\]'s theorems).
//!
//! ```
//! use wht_core::Plan;
//! use wht_models::{analytic_misses, instruction_count, CostModel, ModelCache};
//!
//! let it = Plan::iterative(18)?;
//! let rr = Plan::right_recursive(18)?;
//! let cost = CostModel::default();
//! // Figure 2's ordering: iterative executes fewer instructions...
//! assert!(instruction_count(&it, &cost) < instruction_count(&rr, &cost));
//! // ...but Figure 3's ordering: far out of cache it misses more:
//! let l1 = ModelCache::opteron_l1_elems();
//! assert!(analytic_misses(&it, l1) > analytic_misses(&rr, l1));
//! # Ok::<(), wht_core::WhtError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod closed_forms;
pub mod combined;
pub mod instructions;
pub mod theory;

pub use cache::{analytic_misses, compulsory_misses, ModelCache};
pub use combined::CombinedModel;
pub use instructions::{instruction_count, op_counts, CostModel, OpCounts};
pub use theory::{
    exact_instruction_moments, instruction_extremes, Extremes, Moments, MAX_THEORY_N,
};
