//! The analytic cache-miss model (reference \[8\] of the paper).
//!
//! Furis–Hitczenko–Johnson analyzed WHT cache misses for a **direct-mapped
//! cache with unit line size** — that choice makes the conflict structure
//! exactly analyzable. We implement the model in the same regime, as a
//! recursion over the split tree computable from the high-level plan alone
//! (no execution), and validate it against the trace-driven simulator in
//! `wht-measure` (see the cross-crate tests there and in `/tests`).
//!
//! ## Derivation (element addresses, cache of `C = 2^c` elements)
//!
//! A node of size `2^m` invoked at stride `2^s` touches the footprint
//! `{ base + j * 2^s : j < 2^m }`. Two footprint elements collide in the
//! direct-mapped cache iff their index difference satisfies
//! `(j - j') * 2^s ≡ 0 (mod 2^c)`, i.e. iff `j ≡ j' (mod 2^(c-s))`
//! (for `s >= c`, *all* elements share one set). Hence:
//!
//! * **fits** (`m + s <= c`): the footprint is conflict-free. A cold
//!   invocation pays one compulsory miss per element and every further
//!   access within the invocation hits: `2^m` misses, independent of the
//!   subtree's internal structure.
//! * **thrashes** (`m + s > c`): the footprint self-conflicts, and a
//!   complete pass over it evicts every element before its next reuse, so
//!   each child invocation starts cold (the *cold-refill* step \[8\] builds
//!   on). For a **leaf** in this regime every load misses (cold) *and*
//!   every store misses: after the load pass, only the last `2^(c-s)`
//!   loaded elements survive, and the store pass (same index order) evicts
//!   each survivor before re-reaching it — `2 * 2^k` misses per invocation.
//!   For a **split**, recurse: child `i` of `split[c1..ct]` runs at stride
//!   `2^(s + n(i+1) + ... + nt)` (children execute right-to-left, the last
//!   child first at stride `2^s` — the engine convention) and is invoked
//!   `2^(m - ni)` times, each cold.
//!
//! The model is exact under its assumptions except for rare boundary
//! survivals across sibling passes (an element whose every colliding
//! neighbour happens to be ordered before it in both passes); the
//! validation tests quantify this (it is zero for a single split level and
//! well under 1% of misses in the regimes the paper samples).

use serde::{Deserialize, Serialize};
use wht_core::Plan;

/// Direct-mapped unit-line cache geometry for the analytic model:
/// capacity `2^log2_capacity` **elements**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelCache {
    /// `log2` of the capacity in elements.
    pub log2_capacity: u32,
}

impl ModelCache {
    /// The paper's Opteron L1 in model form: 64 KiB of doubles = `2^13`
    /// elements.
    pub fn opteron_l1_elems() -> Self {
        ModelCache { log2_capacity: 13 }
    }

    /// The paper's Opteron L2 in model form: 1 MiB of doubles = `2^17`
    /// elements.
    pub fn opteron_l2_elems() -> Self {
        ModelCache { log2_capacity: 17 }
    }
}

/// Analytic miss count for one cold execution of `plan` on a direct-mapped
/// unit-line cache of `2^cache.log2_capacity` elements.
pub fn analytic_misses(plan: &Plan, cache: ModelCache) -> u64 {
    misses_rec(plan, 0, cache.log2_capacity)
}

/// Misses of one cold invocation of `plan` at stride `2^s`.
fn misses_rec(plan: &Plan, s: u32, c: u32) -> u64 {
    let m = plan.n();
    if m + s <= c {
        // Fits: compulsory misses only.
        return 1u64 << m;
    }
    match plan {
        // Thrashing leaf: all loads and all stores miss.
        Plan::Leaf { k } => 1u64 << (k + 1),
        Plan::Split { n, children } => {
            let mut total = 0u64;
            let mut suffix = *n; // n(i) + n(i+1) + ... + nt before child i
            for child in children {
                let ni = child.n();
                suffix -= ni; // now n(i+1) + ... + nt: child i's stride
                let invocations = 1u64 << (n - ni);
                total += invocations * misses_rec(child, s + suffix, c);
            }
            total
        }
    }
}

/// Minimum possible misses for any plan of size `2^n`: the compulsory
/// misses `2^n` when the transform fits, and a useful lower reference
/// otherwise.
pub fn compulsory_misses(n: u32) -> u64 {
    1u64 << n
}

#[cfg(test)]
mod tests {
    use super::*;
    use wht_core::Plan;

    const C: ModelCache = ModelCache { log2_capacity: 6 }; // 64 elements

    #[test]
    fn fitting_transform_pays_compulsory_only() {
        for n in 1..=6u32 {
            for plan in [
                Plan::iterative(n).unwrap(),
                Plan::right_recursive(n).unwrap(),
                Plan::left_recursive(n).unwrap(),
            ] {
                assert_eq!(analytic_misses(&plan, C), 1 << n, "plan {plan}");
            }
        }
    }

    #[test]
    fn iterative_misses_closed_form() {
        // Derived in DESIGN/module docs: the flat split into n ones at size
        // 2^n > cache 2^c: pass i (stride 2^(i-1), i = 1..n) fits while
        // i - 1 + 1 <= c and thrashes after:
        // total = c * 2^n + (n - c) * 2^(n+1).
        let c = C.log2_capacity;
        for n in (c + 1)..=(c + 6) {
            let plan = Plan::iterative(n).unwrap();
            let want = u64::from(c) * (1 << n) + u64::from(n - c) * (1 << (n + 1));
            assert_eq!(analytic_misses(&plan, C), want, "n={n}");
        }
    }

    #[test]
    fn right_recursive_beats_left_recursive_out_of_cache() {
        // The paper's Figure 3 ordering: for large sizes the left-recursive
        // algorithm has far more misses (its final pass strides the whole
        // array at every level).
        for n in (C.log2_capacity + 2)..=(C.log2_capacity + 8) {
            let rr = analytic_misses(&Plan::right_recursive(n).unwrap(), C);
            let lr = analytic_misses(&Plan::left_recursive(n).unwrap(), C);
            assert!(rr < lr, "n={n}: right {rr} !< left {lr}");
        }
    }

    #[test]
    fn out_of_cache_iterative_has_more_misses_than_right_recursive() {
        // The paper, Section 3: past the L1 boundary the iterative
        // algorithm has *more* cache misses than the recursive one ("Despite
        // more cache misses, the iterative algorithm has performance closest
        // to the best"): right recursive recurses on contiguous halves until
        // the subproblem fits, paying ~2^n + 2(n-c)2^n, while iterative
        // reloads the whole array on each of its n passes.
        let c = C.log2_capacity;
        for n in (c + 1)..=(c + 10) {
            let it = analytic_misses(&Plan::iterative(n).unwrap(), C);
            let rr = analytic_misses(&Plan::right_recursive(n).unwrap(), C);
            assert!(rr < it, "n={n}: right {rr} !< iterative {it}");
        }
        // Right recursive closed form: the subtree at size m runs at stride
        // 1 (contiguous), so it fits once m <= c: misses = 2^n (compulsory
        // via the fitting level) + 2^(n+1) per non-fitting combine pass.
        for n in (c + 1)..=(c + 6) {
            let rr = analytic_misses(&Plan::right_recursive(n).unwrap(), C);
            let want = (1u64 << n) + u64::from(n - c) * (1 << (n + 1));
            assert_eq!(rr, want, "n={n}");
        }
    }

    #[test]
    fn balanced_plan_localizes_well() {
        // A balanced tree keeps one side at small strides; its misses stay
        // within a small factor of compulsory for moderate overshoot.
        let n = C.log2_capacity + 4;
        let bal = analytic_misses(&Plan::balanced(n, 4).unwrap(), C);
        let it = analytic_misses(&Plan::iterative(n).unwrap(), C);
        assert!(bal < it);
    }

    #[test]
    fn thrashing_leaf_doubles() {
        // A lone leaf bigger than the cache: loads and stores all miss.
        let plan = Plan::Leaf { k: 8 };
        let tiny = ModelCache { log2_capacity: 4 };
        assert_eq!(analytic_misses(&plan, tiny), 512);
    }

    #[test]
    fn monotone_in_cache_size() {
        let plan = Plan::right_recursive(14).unwrap();
        let mut prev = u64::MAX;
        for c in 4..=14u32 {
            let m = analytic_misses(&plan, ModelCache { log2_capacity: c });
            assert!(m <= prev, "misses should not increase with cache size");
            prev = m;
        }
        assert_eq!(prev, 1 << 14); // fits entirely at c = 14
    }

    #[test]
    fn presets() {
        assert_eq!(ModelCache::opteron_l1_elems().log2_capacity, 13);
        assert_eq!(ModelCache::opteron_l2_elems().log2_capacity, 17);
        assert_eq!(compulsory_misses(10), 1024);
    }
}
