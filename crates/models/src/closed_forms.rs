//! Closed-form model values for the canonical algorithms.
//!
//! Reference \[5\]'s analysis gives exact expressions for the instruction
//! count of the iterative, right-recursive and left-recursive algorithms;
//! the paper uses them to *predict* that right recursive outperforms left
//! recursive (Section 3). This module derives the same closed forms for our
//! abstract machine and validates them against the general recursion
//! (`instruction_count` / `analytic_misses`) — both as documentation of the
//! model's structure and as a cross-check of the recursive evaluators.
//!
//! Derivations (children execute right-to-left; see `wht_core::engine`):
//!
//! * **iterative** `split[small[1]; n]`: one node, pass `i` (from the left,
//!   `i = 1..n`) runs with `R_i = 2^(i-1)` and `S_i = 2^(n-i)`:
//!   `sum R_i = 2^n - 1`, `sum R_i*S_i = n*2^(n-1)`.
//! * **right recursive** `split[small[1], R(n-1)]`: node of size `m` is
//!   invoked `2^(n-m)` times; per invocation: `R = 1, 2` for its two
//!   children (j-iterations `3`), k-iterations `2^(m-1) + 2`.
//! * **left recursive** `split[L(n-1), small[1]]`: per invocation
//!   j-iterations `1 + 2^(m-1)`, k-iterations `2 + 2^(m-1)` — the
//!   `j`-heavy loop structure that makes it the instruction-count maximum
//!   of the three.
//!
//! Cache misses (direct-mapped unit-line model of \[8\], capacity `2^c`):
//!
//! * **iterative**: passes at strides `2^0..2^(n-1)`; out of cache each
//!   fitting-stride pass reloads everything (`2^n`), each thrashing pass
//!   doubles (`2^(n+1)`): `c*2^n + (n-c)*2^(n+1)`.
//! * **right recursive**: localizes on contiguous halves:
//!   `2^n + (n-c)*2^(n+1)`.
//! * **left recursive**: same stride multiset as iterative under unit
//!   lines, hence the *same* closed form — the catastrophic gap the paper
//!   measures at n = 18 comes from spatial locality (line size > 1): the
//!   left recursion's pairwise passes jump by `2^(n-m+1)` and waste every
//!   line, which the trace simulator (line-aware) exposes while the
//!   unit-line model cannot. EXPERIMENTS.md discusses this boundary of the
//!   \[8\] model.

use crate::instructions::CostModel;

/// Cost of one `small[1]` codelet invocation under `cost`.
fn leaf1(cost: &CostModel) -> u64 {
    cost.leaf_cost(1)
}

/// Closed-form instruction count of the iterative algorithm (`n >= 2`).
pub fn iterative_instructions(n: u32, cost: &CostModel) -> u64 {
    assert!(n >= 2);
    let pow = |e: u32| 1u64 << e;
    cost.node_invocation
        + cost.outer_iter * u64::from(n)
        + cost.j_iter * (pow(n) - 1)
        + cost.k_iter * u64::from(n) * pow(n - 1)
        + u64::from(n) * pow(n - 1) * leaf1(cost)
}

/// Closed-form instruction count of the right-recursive algorithm
/// (`n >= 2`).
pub fn right_recursive_instructions(n: u32, cost: &CostModel) -> u64 {
    assert!(n >= 2);
    let pow = |e: u32| 1u64 << e;
    let per_invocation =
        cost.node_invocation + 2 * cost.outer_iter + 3 * cost.j_iter + 2 * cost.k_iter;
    per_invocation * (pow(n - 1) - 1)
        + cost.k_iter * u64::from(n - 1) * pow(n - 1)
        + u64::from(n) * pow(n - 1) * leaf1(cost)
}

/// Closed-form instruction count of the left-recursive algorithm
/// (`n >= 2`).
pub fn left_recursive_instructions(n: u32, cost: &CostModel) -> u64 {
    assert!(n >= 2);
    let pow = |e: u32| 1u64 << e;
    let per_invocation = cost.node_invocation + 2 * cost.outer_iter + cost.j_iter + 2 * cost.k_iter;
    per_invocation * (pow(n - 1) - 1)
        + (cost.j_iter + cost.k_iter) * u64::from(n - 1) * pow(n - 1)
        + u64::from(n) * pow(n - 1) * leaf1(cost)
}

/// Closed-form unit-line direct-mapped misses of the iterative algorithm.
pub fn iterative_misses(n: u32, c: u32) -> u64 {
    if n <= c {
        return 1 << n;
    }
    u64::from(c) * (1 << n) + u64::from(n - c) * (1 << (n + 1))
}

/// Closed-form unit-line direct-mapped misses of the right-recursive
/// algorithm.
pub fn right_recursive_misses(n: u32, c: u32) -> u64 {
    if n <= c {
        return 1 << n;
    }
    (1 << n) + u64::from(n - c) * (1 << (n + 1))
}

/// Closed-form unit-line direct-mapped misses of the left-recursive
/// algorithm (equal to [`iterative_misses`] under unit lines; see the
/// module docs for why real line sizes break the tie).
pub fn left_recursive_misses(n: u32, c: u32) -> u64 {
    iterative_misses(n, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{analytic_misses, ModelCache};
    use crate::instructions::instruction_count;
    use wht_core::Plan;

    #[test]
    fn instruction_closed_forms_match_recursion() {
        let custom = CostModel {
            j_iter: 7,
            k_iter: 3,
            leaf_call: 11,
            ..CostModel::default()
        };
        for cost in [CostModel::default(), CostModel::flops_only(), custom] {
            for n in 2..=20u32 {
                assert_eq!(
                    iterative_instructions(n, &cost),
                    instruction_count(&Plan::iterative(n).unwrap(), &cost),
                    "iterative n={n}"
                );
                assert_eq!(
                    right_recursive_instructions(n, &cost),
                    instruction_count(&Plan::right_recursive(n).unwrap(), &cost),
                    "right n={n}"
                );
                assert_eq!(
                    left_recursive_instructions(n, &cost),
                    instruction_count(&Plan::left_recursive(n).unwrap(), &cost),
                    "left n={n}"
                );
            }
        }
    }

    #[test]
    fn miss_closed_forms_match_recursion() {
        for c in [4u32, 7, 13] {
            for n in 2..=(c + 8) {
                let cache = ModelCache { log2_capacity: c };
                assert_eq!(
                    iterative_misses(n, c),
                    analytic_misses(&Plan::iterative(n).unwrap(), cache),
                    "iterative n={n} c={c}"
                );
                assert_eq!(
                    right_recursive_misses(n, c),
                    analytic_misses(&Plan::right_recursive(n).unwrap(), cache),
                    "right n={n} c={c}"
                );
                assert_eq!(
                    left_recursive_misses(n, c),
                    analytic_misses(&Plan::left_recursive(n).unwrap(), cache),
                    "left n={n} c={c}"
                );
            }
        }
    }

    /// The paper's Section 3 prediction, as a theorem of the closed forms:
    /// iterative < right recursive < left recursive in instructions.
    #[test]
    fn five_predicts_the_canonical_instruction_ordering() {
        let cost = CostModel::default();
        for n in 3..=24u32 {
            let it = iterative_instructions(n, &cost);
            let rr = right_recursive_instructions(n, &cost);
            let lr = left_recursive_instructions(n, &cost);
            assert!(it < rr && rr < lr, "n={n}: {it} {rr} {lr}");
        }
    }

    /// The difference left - right grows like j_iter * (n-3) * 2^(n-1):
    /// check the exact algebra.
    #[test]
    fn left_right_gap_formula() {
        let cost = CostModel::default();
        for n in 3..=20u32 {
            let gap =
                left_recursive_instructions(n, &cost) - right_recursive_instructions(n, &cost);
            let expect = cost.j_iter * (u64::from(n - 1) * (1 << (n - 1)) - (1 << n) + 2);
            assert_eq!(gap, expect, "n={n}");
        }
    }
}
