//! Theoretical analysis of the instruction-count model over the algorithm
//! space (the role reference \[5\] plays for the paper).
//!
//! \[5\] proves, for recurrences of the model's form, results about the
//! minimum and maximum, the mean and variance, and the limiting (normal)
//! distribution over the space of split trees. We reproduce the computable
//! side exactly:
//!
//! * [`exact_instruction_moments`] — the mean and variance of the
//!   instruction count under the paper's *recursive split uniform*
//!   distribution, by dynamic programming over sizes (children are
//!   independent given the composition, so first and second moments
//!   propagate exactly);
//! * [`instruction_extremes`] — the exact min/max over the whole space,
//!   with witness plans (also by DP: the cost is monotone in each child's
//!   cost, so composing optimal children is optimal).
//!
//! Both enumerate the `2^(m-1)` compositions of every size `m <= n`, so they
//! are exponential in `n`; `n <= 25` is enforced (the paper's sizes are 9
//! and 18; n = 25 takes ~1 s in release builds). Monte-Carlo cross-checks
//! live in the test suites and the `table_theory` bench binary.

use crate::instructions::CostModel;
use wht_core::{Plan, WhtError};

/// Mean and variance of the instruction count at one size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    /// Expected instruction count under recursive-split-uniform sampling.
    pub mean: f64,
    /// Variance of the instruction count.
    pub variance: f64,
}

/// Largest `n` accepted by the exact enumerations.
pub const MAX_THEORY_N: u32 = 25;

/// Exact per-size moments of the instruction-count model for sizes
/// `1..=n` under the recursive split uniform distribution (leaf choice
/// allowed up to `2^max_leaf_k`, the convention of DESIGN.md §5.6).
///
/// Returns `moments[m]` for `m` in `1..=n` (index 0 is a placeholder).
///
/// # Errors
/// [`WhtError::SizeTooLarge`] for `n` above [`MAX_THEORY_N`];
/// [`WhtError::InvalidConfig`] for `n == 0` or `max_leaf_k == 0`.
pub fn exact_instruction_moments(
    n: u32,
    cost: &CostModel,
    max_leaf_k: u32,
) -> Result<Vec<Moments>, WhtError> {
    validate(n, max_leaf_k)?;
    let n = n as usize;
    let mut out = vec![
        Moments {
            mean: 0.0,
            variance: 0.0
        };
        n + 1
    ];
    for m in 1..=n {
        let mut sum_mean = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut choices = 0.0f64;
        let leaf_allowed = m as u32 <= max_leaf_k;
        if leaf_allowed {
            let lc = cost.leaf_cost(m as u32) as f64;
            sum_mean += lc;
            sum_sq += lc * lc;
            choices += 1.0;
        }
        if m >= 2 {
            let mut parts: Vec<u32> = Vec::with_capacity(m);
            for mask in 1u64..(1u64 << (m - 1)) {
                decode_mask(m as u32, mask, &mut parts);
                let ov = cost.split_overhead(m as u32, &parts) as f64;
                let mut mu = ov;
                let mut var = 0.0f64;
                for &p in &parts {
                    let a = (1u64 << (m as u32 - p)) as f64;
                    mu += a * out[p as usize].mean;
                    var += a * a * out[p as usize].variance;
                }
                sum_mean += mu;
                sum_sq += mu * mu + var;
                choices += 1.0;
            }
        }
        let mean = sum_mean / choices;
        let second = sum_sq / choices;
        out[m] = Moments {
            mean,
            variance: (second - mean * mean).max(0.0),
        };
    }
    Ok(out)
}

/// Exact extremes of the instruction-count model over the space at size
/// `2^n`, with witness plans.
#[derive(Debug, Clone, PartialEq)]
pub struct Extremes {
    /// Minimum instruction count over all plans.
    pub min: u64,
    /// A plan achieving the minimum.
    pub min_plan: Plan,
    /// Maximum instruction count over all plans.
    pub max: u64,
    /// A plan achieving the maximum.
    pub max_plan: Plan,
}

/// Compute [`Extremes`] by dynamic programming over sizes.
///
/// # Errors
/// Same conditions as [`exact_instruction_moments`].
pub fn instruction_extremes(
    n: u32,
    cost: &CostModel,
    max_leaf_k: u32,
) -> Result<Extremes, WhtError> {
    validate(n, max_leaf_k)?;
    let n = n as usize;
    // Per size: (min value, min plan, max value, max plan).
    let mut table: Vec<Option<Extremes>> = vec![None; n + 1];
    for m in 1..=n {
        let mut best: Option<Extremes> = if m as u32 <= max_leaf_k {
            let lc = cost.leaf_cost(m as u32);
            let leaf = Plan::Leaf { k: m as u32 };
            Some(Extremes {
                min: lc,
                min_plan: leaf.clone(),
                max: lc,
                max_plan: leaf,
            })
        } else {
            None
        };
        if m >= 2 {
            let mut parts: Vec<u32> = Vec::with_capacity(m);
            for mask in 1u64..(1u64 << (m - 1)) {
                decode_mask(m as u32, mask, &mut parts);
                let ov = cost.split_overhead(m as u32, &parts);
                let mut min_v = ov;
                let mut max_v = ov;
                for &p in &parts {
                    let a = 1u64 << (m as u32 - p);
                    let sub = table[p as usize].as_ref().expect("smaller sizes filled");
                    min_v += a * sub.min;
                    max_v += a * sub.max;
                }
                let improve_min = best.as_ref().is_none_or(|b| min_v < b.min);
                let improve_max = best.as_ref().is_none_or(|b| max_v > b.max);
                if improve_min || improve_max {
                    let make_plan = |pick_min: bool| -> Plan {
                        let children: Vec<Plan> = parts
                            .iter()
                            .map(|&p| {
                                let sub = table[p as usize].as_ref().expect("filled");
                                if pick_min {
                                    sub.min_plan.clone()
                                } else {
                                    sub.max_plan.clone()
                                }
                            })
                            .collect();
                        Plan::split(children).expect("valid split")
                    };
                    match best.as_mut() {
                        None => {
                            best = Some(Extremes {
                                min: min_v,
                                min_plan: make_plan(true),
                                max: max_v,
                                max_plan: make_plan(false),
                            });
                        }
                        Some(b) => {
                            if improve_min {
                                b.min = min_v;
                                b.min_plan = make_plan(true);
                            }
                            if improve_max {
                                b.max = max_v;
                                b.max_plan = make_plan(false);
                            }
                        }
                    }
                }
            }
        }
        table[m] = best;
    }
    Ok(table[n].take().expect("n >= 1 always has a plan"))
}

fn validate(n: u32, max_leaf_k: u32) -> Result<(), WhtError> {
    if n == 0 || max_leaf_k == 0 {
        return Err(WhtError::InvalidConfig(
            "n and max_leaf_k must be >= 1".into(),
        ));
    }
    if n > MAX_THEORY_N {
        return Err(WhtError::SizeTooLarge { n });
    }
    Ok(())
}

/// Decode compositions without allocating per mask.
fn decode_mask(n: u32, mask: u64, parts: &mut Vec<u32>) {
    parts.clear();
    let mut current = 1u32;
    for i in 0..n - 1 {
        if mask & (1 << i) != 0 {
            parts.push(current);
            current = 1;
        } else {
            current += 1;
        }
    }
    parts.push(current);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instructions::instruction_count;
    use wht_space::enumerate_plans;

    /// Brute force over the fully enumerated space.
    fn brute(n: u32, cost: &CostModel, max_leaf_k: u32) -> (f64, f64, u64, u64) {
        // NOTE: enumeration weights every *plan* equally, which is NOT the
        // recursive-split-uniform distribution; used only for extremes.
        let plans = enumerate_plans(n, max_leaf_k, 2_000_000).unwrap();
        let counts: Vec<u64> = plans.iter().map(|p| instruction_count(p, cost)).collect();
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        let mean = counts.iter().map(|&c| c as f64).sum::<f64>() / counts.len() as f64;
        (mean, 0.0, min, max)
    }

    #[test]
    fn extremes_match_enumeration() {
        let cost = CostModel::default();
        for max_leaf in [2u32, 8] {
            for n in 1..=7u32 {
                let ex = instruction_extremes(n, &cost, max_leaf).unwrap();
                let (_, _, min_b, max_b) = brute(n, &cost, max_leaf);
                assert_eq!(ex.min, min_b, "min n={n} L={max_leaf}");
                assert_eq!(ex.max, max_b, "max n={n} L={max_leaf}");
                // Witnesses actually achieve the extremes:
                assert_eq!(instruction_count(&ex.min_plan, &cost), ex.min);
                assert_eq!(instruction_count(&ex.max_plan, &cost), ex.max);
                assert_eq!(ex.min_plan.n(), n);
                assert_eq!(ex.max_plan.n(), n);
            }
        }
    }

    /// Exact moments against direct probability-weighted enumeration for a
    /// small size where the distribution is computable by hand-expansion.
    #[test]
    fn moments_match_direct_expectation() {
        let cost = CostModel::default();
        // Recursively expand the distribution: returns Vec of (probability,
        // instruction count).
        fn dist(n: u32, cost: &CostModel, max_leaf: u32) -> Vec<(f64, f64)> {
            let leaf_allowed = n <= max_leaf;
            let total_choices = if n == 1 {
                1.0
            } else if leaf_allowed {
                (1u64 << (n - 1)) as f64
            } else {
                ((1u64 << (n - 1)) - 1) as f64
            };
            let mut out = Vec::new();
            if leaf_allowed {
                out.push((1.0 / total_choices, cost.leaf_cost(n) as f64));
            }
            if n >= 2 {
                let mut parts = Vec::new();
                for mask in 1u64..(1u64 << (n - 1)) {
                    super::decode_mask(n, mask, &mut parts);
                    let ov = cost.split_overhead(n, &parts) as f64;
                    // Cartesian product over children's distributions.
                    let mut partial: Vec<(f64, f64)> = vec![(1.0 / total_choices, ov)];
                    for &p in &parts {
                        let a = (1u64 << (n - p)) as f64;
                        let child = dist(p, cost, max_leaf);
                        let mut next = Vec::with_capacity(partial.len() * child.len());
                        for &(pp, vv) in &partial {
                            for &(cp, cv) in &child {
                                next.push((pp * cp, vv + a * cv));
                            }
                        }
                        partial = next;
                    }
                    out.extend(partial);
                }
            }
            out
        }

        for n in 1..=6u32 {
            let d = dist(n, &cost, 8);
            let ptotal: f64 = d.iter().map(|&(p, _)| p).sum();
            assert!((ptotal - 1.0).abs() < 1e-9, "probabilities sum to 1");
            let mean: f64 = d.iter().map(|&(p, v)| p * v).sum();
            let second: f64 = d.iter().map(|&(p, v)| p * v * v).sum();
            let var = second - mean * mean;
            let m = exact_instruction_moments(n, &cost, 8).unwrap();
            assert!(
                (m[n as usize].mean - mean).abs() < 1e-6 * mean.max(1.0),
                "mean n={n}: {} vs {}",
                m[n as usize].mean,
                mean
            );
            assert!(
                (m[n as usize].variance - var).abs() < 1e-6 * var.max(1.0),
                "var n={n}: {} vs {}",
                m[n as usize].variance,
                var
            );
        }
    }

    #[test]
    fn min_is_within_extremes_and_flat_split_is_minimal_for_flops() {
        // With the flops-only cost every plan costs n*2^n: min == max.
        let cost = CostModel::flops_only();
        let ex = instruction_extremes(10, &cost, 8).unwrap();
        assert_eq!(ex.min, ex.max);
        assert_eq!(ex.min, 10 * 1024);
    }

    #[test]
    fn mean_between_extremes() {
        let cost = CostModel::default();
        for n in 2..=10u32 {
            let ex = instruction_extremes(n, &cost, 8).unwrap();
            let m = exact_instruction_moments(n, &cost, 8).unwrap()[n as usize];
            assert!(ex.min as f64 <= m.mean && m.mean <= ex.max as f64);
            assert!(m.variance >= 0.0);
        }
    }

    #[test]
    fn parameter_validation() {
        let cost = CostModel::default();
        assert!(exact_instruction_moments(0, &cost, 8).is_err());
        assert!(exact_instruction_moments(8, &cost, 0).is_err());
        assert!(exact_instruction_moments(MAX_THEORY_N + 1, &cost, 8).is_err());
        assert!(instruction_extremes(0, &cost, 8).is_err());
        assert!(instruction_extremes(26, &cost, 8).is_err());
    }
}
