//! The combined performance model `alpha * Instructions + beta * Misses`
//! (Section 4 of the paper).
//!
//! "For the larger transform size a model including both instruction count
//! and cache misses is needed in order to obtain stronger correlation. The
//! model is of the form alpha*I + beta*M ... The coefficients alpha and beta
//! were chosen in order to maximize the correlation." The grid search that
//! chooses them lives in `wht-stats::gridsearch`; this type just evaluates
//! the linear combination.

use serde::{Deserialize, Serialize};

/// Linear combination of the two models of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CombinedModel {
    /// Weight on the instruction count (the paper's optimum: 1.00).
    pub alpha: f64,
    /// Weight on the cache-miss count (the paper's optimum: 0.05).
    pub beta: f64,
}

impl CombinedModel {
    /// The coefficients the paper reports as optimal on its grid for
    /// WHT(2^18) on the Opteron: `alpha = 1.00`, `beta = 0.05`.
    pub fn paper_optimum() -> Self {
        CombinedModel {
            alpha: 1.0,
            beta: 0.05,
        }
    }

    /// Evaluate `alpha * instructions + beta * misses`.
    pub fn value(&self, instructions: u64, misses: u64) -> f64 {
        self.alpha * instructions as f64 + self.beta * misses as f64
    }

    /// Evaluate over parallel slices, producing the model series for a whole
    /// sample of algorithms.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn series(&self, instructions: &[u64], misses: &[u64]) -> Vec<f64> {
        assert_eq!(instructions.len(), misses.len(), "length mismatch");
        instructions
            .iter()
            .zip(misses.iter())
            .map(|(&i, &m)| self.value(i, m))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluates_linear_combination() {
        let m = CombinedModel {
            alpha: 1.0,
            beta: 0.05,
        };
        assert_eq!(m.value(100, 40), 102.0);
        assert_eq!(m.value(0, 0), 0.0);
    }

    #[test]
    fn instruction_only_and_miss_only_specialize() {
        let i_only = CombinedModel {
            alpha: 1.0,
            beta: 0.0,
        };
        assert_eq!(i_only.value(123, 456), 123.0);
        let m_only = CombinedModel {
            alpha: 0.0,
            beta: 1.0,
        };
        assert_eq!(m_only.value(123, 456), 456.0);
    }

    #[test]
    fn series_matches_pointwise() {
        let m = CombinedModel::paper_optimum();
        let i = vec![10u64, 20, 30];
        let mm = vec![100u64, 0, 60];
        let s = m.series(&i, &mm);
        assert_eq!(s, vec![15.0, 20.0, 33.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn series_length_checked() {
        CombinedModel::paper_optimum().series(&[1], &[1, 2]);
    }
}
