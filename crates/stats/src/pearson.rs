//! Pearson product-moment correlation (the paper's Section 4 statistic).

/// Pearson correlation coefficient of two equal-length series.
///
/// Returns `f64::NAN` when either series is constant (the coefficient is
/// undefined there — this happens at the `alpha = beta = 0` corner of the
/// paper's Figure 9 grid).
///
/// # Panics
/// Panics if the series differ in length or are shorter than 2.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series must have equal length");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return f64::NAN;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_relation() {
        let xs: Vec<f64> = (0..100).map(|v| v as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x + 7.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|&x| -2.0 * x).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn affine_invariance() {
        let xs = [1.0, 4.0, 2.0, 8.0, 5.0];
        let ys = [2.0, 3.0, 1.0, 9.0, 4.0];
        let r0 = pearson(&xs, &ys);
        let xs2: Vec<f64> = xs.iter().map(|&x| 100.0 * x - 40.0).collect();
        let ys2: Vec<f64> = ys.iter().map(|&y| 0.01 * y + 5.0).collect();
        assert!((pearson(&xs2, &ys2) - r0).abs() < 1e-12);
    }

    #[test]
    fn independent_noise_is_weakly_correlated() {
        // Deterministic pseudo-random pairs.
        let xs: Vec<f64> = (0..2000u64)
            .map(|i| ((i.wrapping_mul(0x9E3779B97F4A7C15) >> 33) % 1000) as f64)
            .collect();
        let ys: Vec<f64> = (0..2000u64)
            .map(|i| ((i.wrapping_mul(0xD1B54A32D192ED03) >> 33) % 1000) as f64)
            .collect();
        assert!(pearson(&xs, &ys).abs() < 0.1);
    }

    #[test]
    fn constant_series_is_nan() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_nan());
        assert!(pearson(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).is_nan());
    }

    #[test]
    fn bounded_by_one() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let ys = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0, 1.0, 8.0];
        let r = pearson(&xs, &ys);
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        pearson(&[1.0, 2.0], &[1.0, 2.0, 3.0]);
    }
}
