//! The percentile-pruning curves of the paper's Figures 10 and 11.
//!
//! "Each curve in the figures show\[s\] the cumulative probability of
//! obtaining an algorithm outside of the pth percentile as a function of
//! instruction count [or combined count]. For a given instruction count,
//! ... the value of the curve gives the probability that an algorithm with
//! fewer than or equal to the specified number has performance worse than
//! the top p percent. In the limit as the instruction count ... approaches
//! the maximum value, the cumulative probability should approach 1 - p."
//!
//! Formally, with model values `m_i` and performance values `y_i` (smaller
//! is better) over a sample of size `N`:
//!
//! ```text
//! curve_p(T) = #{ i : m_i <= T  and  y_i > percentile_p(y) } / N
//! ```
//!
//! Once `curve_p(T)` is within epsilon of `1 - p`, every algorithm with
//! model value above `T` that remains unexamined is (with probability
//! `1 - epsilon/(...)`) inside the top p% — the paper's pruning rule: for
//! n = 9, discarding algorithms with more than 7e4 instructions still finds
//! a top-5% algorithm.

use crate::describe::quantile;

/// One pruning curve: sorted model-value thresholds and the fraction of the
/// *whole sample* that is both below the threshold and outside the top-p%.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneCurve {
    /// The percentile this curve is for (e.g. 0.05 = top 5%).
    pub p: f64,
    /// Performance threshold defining "top p%" (the p-quantile of `y`).
    pub perf_cutoff: f64,
    /// Model-value axis (the sample's model values, sorted ascending).
    pub thresholds: Vec<f64>,
    /// `fraction[i]` = share of the sample with model value <=
    /// `thresholds[i]` and performance outside the top p%.
    pub fraction: Vec<f64>,
}

impl PruneCurve {
    /// Build the curve for percentile `p` (in `(0, 1)`).
    ///
    /// # Panics
    /// Panics if the slices differ in length, are empty, or `p` is outside
    /// `(0, 1)`.
    pub fn new(model: &[f64], perf: &[f64], p: f64) -> Self {
        assert_eq!(model.len(), perf.len());
        assert!(!model.is_empty());
        assert!(p > 0.0 && p < 1.0, "p must be in (0,1)");
        let perf_cutoff = quantile(perf, p);
        let n = model.len() as f64;
        let mut rows: Vec<(f64, bool)> = model
            .iter()
            .zip(perf.iter())
            .map(|(&m, &y)| (m, y > perf_cutoff))
            .collect();
        rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite model values"));
        let mut acc = 0u64;
        let mut thresholds = Vec::with_capacity(rows.len());
        let mut fraction = Vec::with_capacity(rows.len());
        for (m, outside) in rows {
            if outside {
                acc += 1;
            }
            thresholds.push(m);
            fraction.push(acc as f64 / n);
        }
        PruneCurve {
            p,
            perf_cutoff,
            thresholds,
            fraction,
        }
    }

    /// The curve's limit (last value); approaches `1 - p` on large samples.
    pub fn limit(&self) -> f64 {
        *self.fraction.last().expect("non-empty")
    }

    /// Smallest model threshold `T` such that pruning to `model <= T`
    /// still *retains at least one* top-p% algorithm, i.e. the smallest
    /// model value among the top performers. Pruning at any `T` at or above
    /// this is safe.
    pub fn safe_prune_threshold(model: &[f64], perf: &[f64], p: f64) -> f64 {
        assert_eq!(model.len(), perf.len());
        assert!(!model.is_empty());
        let cutoff = quantile(perf, p);
        model
            .iter()
            .zip(perf.iter())
            .filter(|&(_, &y)| y <= cutoff)
            .map(|(&m, _)| m)
            .fold(f64::INFINITY, f64::min)
    }

    /// Evaluate the curve at an arbitrary threshold by step interpolation.
    pub fn at(&self, threshold: f64) -> f64 {
        match self
            .thresholds
            .partition_point(|&t| t <= threshold)
            .checked_sub(1)
        {
            Some(i) => self.fraction[i],
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Perfectly correlated model and performance: pruning by model is
    /// exactly pruning by performance.
    #[test]
    fn perfect_model_curve_shape() {
        let xs: Vec<f64> = (0..100).map(|v| v as f64).collect();
        let c = PruneCurve::new(&xs, &xs, 0.10);
        // Below the 10th percentile no algorithm is "outside":
        assert_eq!(c.at(5.0), 0.0);
        // At the top the curve reaches ~0.9:
        assert!((c.limit() - 0.90).abs() < 0.02);
        // Safe pruning threshold is the best model value (0.0):
        assert_eq!(PruneCurve::safe_prune_threshold(&xs, &xs, 0.10), 0.0);
    }

    /// Anti-correlated model: the good performers have the LARGEST model
    /// values; pruning by the model is maximally unsafe.
    #[test]
    fn anticorrelated_model_unsafe() {
        let model: Vec<f64> = (0..100).map(|v| v as f64).collect();
        let perf: Vec<f64> = (0..100).map(|v| (99 - v) as f64).collect();
        let t = PruneCurve::safe_prune_threshold(&model, &perf, 0.05);
        // The best performers sit at the top of the model axis:
        assert!(t >= 94.0);
        let c = PruneCurve::new(&model, &perf, 0.05);
        // Early thresholds already accumulate "outside" mass:
        assert!(c.at(10.0) > 0.09);
    }

    #[test]
    fn limit_approaches_one_minus_p() {
        let model: Vec<f64> = (0..1000).map(|v| (v % 97) as f64).collect();
        let perf: Vec<f64> = (0..1000).map(|v| ((v * 31) % 89) as f64).collect();
        for p in [0.01, 0.05, 0.10] {
            let c = PruneCurve::new(&model, &perf, p);
            assert!(
                (c.limit() - (1.0 - p)).abs() < 0.06,
                "p={p}: limit {} should be near {}",
                c.limit(),
                1.0 - p
            );
        }
    }

    #[test]
    fn at_is_monotone_step() {
        let model = [3.0, 1.0, 2.0, 5.0, 4.0];
        let perf = [30.0, 10.0, 20.0, 50.0, 40.0];
        let c = PruneCurve::new(&model, &perf, 0.25);
        assert_eq!(c.at(0.5), 0.0);
        let mut prev = 0.0;
        for t in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
            let v = c.at(t);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn bad_percentile_rejected() {
        PruneCurve::new(&[1.0, 2.0], &[1.0, 2.0], 1.5);
    }
}
