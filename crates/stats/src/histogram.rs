//! Equal-width histograms (the paper's Figures 4 and 5 use 50 bins).

/// An equal-width histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Left edge of the first bin.
    pub lo: f64,
    /// Right edge of the last bin.
    pub hi: f64,
    /// Width of each bin (`(hi - lo) / bins`).
    pub width: f64,
    /// Observation counts per bin.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Build a histogram with `bins` equal-width bins spanning the data
    /// range (the top edge is inclusive, matching MATLAB's `hist` used by
    /// the paper's figures).
    ///
    /// # Panics
    /// Panics if `bins == 0`, the data is empty, or contains non-finite
    /// values.
    pub fn new(xs: &[f64], bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(!xs.is_empty(), "need data");
        assert!(xs.iter().all(|v| v.is_finite()), "need finite data");
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        let width = span / bins as f64;
        let mut counts = vec![0u64; bins];
        for &x in xs {
            let idx = (((x - lo) / span) * bins as f64) as usize;
            counts[idx.min(bins - 1)] += 1;
        }
        Histogram {
            lo,
            hi,
            width,
            counts,
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Center of bin `i`.
    pub fn center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.width
    }

    /// Index of the fullest bin (the mode).
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// `(center, count)` rows — the series a figure plots.
    pub fn series(&self) -> Vec<(f64, u64)> {
        (0..self.bins())
            .map(|i| (self.center(i), self.counts[i]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_data_spreads_evenly() {
        let xs: Vec<f64> = (0..500).map(|v| v as f64).collect();
        let h = Histogram::new(&xs, 50);
        assert_eq!(h.bins(), 50);
        assert_eq!(h.total(), 500);
        assert!(h.counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn max_value_lands_in_last_bin() {
        let h = Histogram::new(&[0.0, 1.0, 2.0, 10.0], 10);
        assert_eq!(h.counts[9], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn constant_data_single_spike() {
        let h = Histogram::new(&[3.0; 20], 5);
        assert_eq!(h.total(), 20);
        assert_eq!(h.counts[0], 20); // degenerate span collapses to bin 0
    }

    #[test]
    fn centers_and_mode() {
        let xs = [0.0, 1.0, 1.1, 1.2, 4.0];
        let h = Histogram::new(&xs, 4);
        assert_eq!(h.mode_bin(), 1);
        assert!((h.center(0) - 0.5).abs() < 1e-12);
        let series = h.series();
        assert_eq!(series.len(), 4);
        assert_eq!(series.iter().map(|&(_, c)| c).sum::<u64>(), 5);
    }

    #[test]
    #[should_panic(expected = "need data")]
    fn empty_rejected() {
        Histogram::new(&[], 10);
    }
}
