//! Descriptive statistics: moments, quantiles, and the IQR.
//!
//! Everything the paper's Section 3–4 analysis needs: means and variances
//! (to compare against the exact theory DP), skewness/excess kurtosis (to
//! check the limiting-normality claim of reference \[5\]), and quartiles (for
//! the outer-fence outlier filter).

/// Summary moments of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Describe {
    /// Number of observations.
    pub len: usize,
    /// Sample mean.
    pub mean: f64,
    /// Population variance (divides by `n`).
    pub variance: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Sample skewness (`m3 / m2^1.5`); 0 for symmetric data.
    pub skewness: f64,
    /// Excess kurtosis (`m4 / m2^2 - 3`); 0 for a normal distribution.
    pub excess_kurtosis: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

/// Compute [`Describe`] for a sample.
///
/// # Panics
/// Panics on an empty sample or non-finite values.
pub fn describe(xs: &[f64]) -> Describe {
    assert!(!xs.is_empty(), "describe() needs at least one observation");
    assert!(
        xs.iter().all(|v| v.is_finite()),
        "describe() requires finite values"
    );
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let (mut m2, mut m3, mut m4) = (0.0, 0.0, 0.0);
    for &x in xs {
        let d = x - mean;
        m2 += d * d;
        m3 += d * d * d;
        m4 += d * d * d * d;
    }
    m2 /= n;
    m3 /= n;
    m4 /= n;
    let std_dev = m2.sqrt();
    let (skewness, excess_kurtosis) = if m2 > 0.0 {
        (m3 / m2.powf(1.5), m4 / (m2 * m2) - 3.0)
    } else {
        (0.0, 0.0)
    };
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Describe {
        len: xs.len(),
        mean,
        variance: m2,
        std_dev,
        skewness,
        excess_kurtosis,
        min,
        max,
    }
}

/// Quantile with linear interpolation between order statistics
/// (`q` in `[0, 1]`; `q = 0.25` is Q1, `q = 0.5` the median).
///
/// # Panics
/// Panics on an empty sample or `q` outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile() needs data");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    quantile_sorted(&sorted, q)
}

/// [`quantile`] for data already sorted ascending (no copy).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// First quartile, third quartile, and the interquartile range.
pub fn quartiles(xs: &[f64]) -> (f64, f64, f64) {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let q1 = quantile_sorted(&sorted, 0.25);
    let q3 = quantile_sorted(&sorted, 0.75);
    (q1, q3, q3 - q1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_constant() {
        let d = describe(&[5.0; 10]);
        assert_eq!(d.mean, 5.0);
        assert_eq!(d.variance, 0.0);
        assert_eq!(d.skewness, 0.0);
        assert_eq!(d.min, 5.0);
        assert_eq!(d.max, 5.0);
    }

    #[test]
    fn describe_known_values() {
        let d = describe(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.mean, 2.5);
        assert!((d.variance - 1.25).abs() < 1e-12);
        assert_eq!(d.skewness, 0.0); // symmetric
        assert_eq!(d.len, 4);
    }

    #[test]
    fn skewness_sign() {
        // Right-skewed data (long right tail) has positive skewness.
        let right = describe(&[1.0, 1.0, 1.0, 1.0, 10.0]);
        assert!(right.skewness > 1.0);
        let left = describe(&[-10.0, 1.0, 1.0, 1.0, 1.0]);
        assert!(left.skewness < -1.0);
    }

    #[test]
    fn normalish_sample_has_small_higher_moments() {
        // A coarse triangular sample approximating symmetry.
        let xs: Vec<f64> = (-100..=100).map(|v| v as f64 / 10.0).collect();
        let d = describe(&xs);
        assert!(d.skewness.abs() < 1e-12);
        // Uniform has excess kurtosis -1.2:
        assert!((d.excess_kurtosis + 1.2).abs() < 0.01);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
        let (q1, q3, iqr) = quartiles(&xs);
        assert_eq!(q1, 1.75);
        assert_eq!(q3, 3.25);
        assert!((iqr - 1.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.5), 2.5);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_rejected() {
        describe(&[]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_rejected() {
        describe(&[1.0, f64::NAN]);
    }
}
