//! The alpha/beta grid search of the paper's Figure 9.
//!
//! "The model is of the form alpha*I + beta*M ... The coefficients alpha and
//! beta were chosen in order to maximize the correlation. Figure 9 shows the
//! correlation coefficient as a function of alpha and beta where
//! 0 <= alpha, beta <= 1 are sampled uniformly in increments of 0.05. The
//! optimal value, over this grid, occurs when alpha = 1.00 and beta = 0.05."
//!
//! (Pearson correlation is invariant under positive scaling, so rho really
//! depends only on the direction beta/alpha; the full grid is reproduced
//! anyway to regenerate the figure's surface, and the argmax is reported the
//! way the paper reports it.)

use crate::pearson::pearson;

/// Result of a correlation grid search.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSearchResult {
    /// Grid values of alpha (row axis).
    pub alphas: Vec<f64>,
    /// Grid values of beta (column axis).
    pub betas: Vec<f64>,
    /// `rho[i][j] = pearson(alpha_i * I + beta_j * M, cycles)`;
    /// `NaN` where the combination is constant (the 0,0 corner).
    pub rho: Vec<Vec<f64>>,
    /// Best alpha (first maximal cell in row-major order).
    pub best_alpha: f64,
    /// Best beta.
    pub best_beta: f64,
    /// Correlation at the best cell.
    pub best_rho: f64,
}

/// Evaluate `pearson(alpha*I + beta*M, cycles)` over the paper's grid
/// (`0..=1` in steps of `step`, default 0.05).
///
/// # Panics
/// Panics if the slices differ in length, are shorter than 2, or `step` is
/// not in `(0, 1]`.
pub fn grid_search_combined(
    instructions: &[u64],
    misses: &[u64],
    cycles: &[f64],
    step: f64,
) -> GridSearchResult {
    assert_eq!(instructions.len(), misses.len());
    assert_eq!(instructions.len(), cycles.len());
    assert!(step > 0.0 && step <= 1.0, "step must be in (0, 1]");
    let steps = (1.0 / step).round() as usize;
    let levels: Vec<f64> = (0..=steps).map(|i| i as f64 * step).collect();

    let ifl: Vec<f64> = instructions.iter().map(|&v| v as f64).collect();
    let mfl: Vec<f64> = misses.iter().map(|&v| v as f64).collect();

    let mut rho = vec![vec![f64::NAN; levels.len()]; levels.len()];
    let mut best = (f64::NAN, 0.0, 0.0);
    let mut combo = vec![0.0f64; ifl.len()];
    for (i, &a) in levels.iter().enumerate() {
        for (j, &b) in levels.iter().enumerate() {
            for ((c, &iv), &mv) in combo.iter_mut().zip(ifl.iter()).zip(mfl.iter()) {
                *c = a * iv + b * mv;
            }
            let r = pearson(&combo, cycles);
            rho[i][j] = r;
            if !r.is_nan() && (best.0.is_nan() || r > best.0) {
                best = (r, a, b);
            }
        }
    }
    GridSearchResult {
        alphas: levels.clone(),
        betas: levels,
        rho,
        best_alpha: best.1,
        best_beta: best.2,
        best_rho: best.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic data where cycles = I + 0.25 * M + small noise: the grid
    /// optimum must sit near the beta/alpha = 0.25 direction.
    #[test]
    fn recovers_planted_direction() {
        let n = 400usize;
        let instructions: Vec<u64> = (0..n).map(|i| 1000 + ((i * 37) % 500) as u64).collect();
        let misses: Vec<u64> = (0..n).map(|i| 200 + ((i * 101) % 900) as u64).collect();
        let cycles: Vec<f64> = instructions
            .iter()
            .zip(misses.iter())
            .enumerate()
            .map(|(i, (&iv, &mv))| iv as f64 + 0.25 * mv as f64 + ((i * 7919) % 11) as f64 * 0.01)
            .collect();
        let res = grid_search_combined(&instructions, &misses, &cycles, 0.05);
        assert!(res.best_rho > 0.999, "rho = {}", res.best_rho);
        let dir = res.best_beta / res.best_alpha.max(1e-12);
        assert!(
            (dir - 0.25).abs() < 0.08,
            "direction {dir} should be near 0.25 (alpha={}, beta={})",
            res.best_alpha,
            res.best_beta
        );
    }

    #[test]
    fn grid_shape_and_corner_nan() {
        let instructions = vec![1u64, 2, 3, 4];
        let misses = vec![4u64, 3, 2, 1];
        let cycles = vec![1.0, 2.0, 3.0, 4.0];
        let res = grid_search_combined(&instructions, &misses, &cycles, 0.25);
        assert_eq!(res.alphas.len(), 5);
        assert_eq!(res.rho.len(), 5);
        assert!(res.rho[0][0].is_nan(), "0,0 corner is constant");
        // alpha=1,beta=0 is exactly I vs cycles: rho = 1 here.
        assert!((res.rho[4][0] - 1.0).abs() < 1e-12);
        assert!((res.best_rho - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scale_invariance_of_rows() {
        // Cells along a ray (same beta/alpha) have identical rho.
        let instructions = vec![10u64, 50, 20, 80, 30];
        let misses = vec![5u64, 1, 9, 4, 7];
        let cycles = vec![20.0, 60.0, 35.0, 90.0, 45.0];
        let res = grid_search_combined(&instructions, &misses, &cycles, 0.25);
        // (0.25, 0.25) vs (0.5, 0.5) vs (1.0, 1.0):
        let a = res.rho[1][1];
        let b = res.rho[2][2];
        let c = res.rho[4][4];
        assert!((a - b).abs() < 1e-12 && (b - c).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        grid_search_combined(&[1, 2], &[1], &[1.0, 2.0], 0.5);
    }
}
