//! # wht-stats — the statistical toolkit of the paper's evaluation
//!
//! Everything Figures 4–11 and the Section 4 analysis need, implemented
//! from scratch:
//!
//! * [`mod@describe`] — moments (incl. skewness/kurtosis for the
//!   limiting-normality check), quantiles, IQR;
//! * [`filter`] — the 3×IQR outer-fence outlier filter of Section 3;
//! * [`histogram`] — 50-bin equal-width histograms (Figures 4–5);
//! * [`mod@pearson`] — the correlation coefficient (Figures 6–8);
//! * [`gridsearch`] — the `alpha*I + beta*M` correlation surface and argmax
//!   (Figure 9);
//! * [`cdf`] — percentile pruning curves (Figures 10–11) and the safe
//!   pruning threshold.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bootstrap;
pub mod cdf;
pub mod describe;
pub mod filter;
pub mod gridsearch;
pub mod histogram;
pub mod pearson;
pub mod rank;
pub mod regression;

pub use bootstrap::{bootstrap_pearson_ci, ConfidenceInterval};
pub use cdf::PruneCurve;
pub use describe::{describe, quantile, quantile_sorted, quartiles, Describe};
pub use filter::{fence_mask, outer_fence_filter, select};
pub use gridsearch::{grid_search_combined, GridSearchResult};
pub use histogram::Histogram;
pub use pearson::pearson;
pub use rank::{ranks, spearman};
pub use regression::{fit_line, least_squares, ridge_regression, LineFit};
