//! Spearman rank correlation — a robustness companion to Pearson's rho.
//!
//! The paper uses Pearson throughout; the pruning application only needs
//! the *ranking* of algorithms to be preserved, for which Spearman is the
//! natural diagnostic (reported alongside Pearson in the figure binaries'
//! ablation output and EXPERIMENTS.md).

use crate::pearson::pearson;

/// Ranks with ties sharing their average rank (1-based).
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&i, &j| xs[i].partial_cmp(&xs[j]).expect("finite values"));
    let mut out = vec![0.0f64; xs.len()];
    let mut i = 0;
    while i < order.len() {
        // Find the tie group [i, j).
        let mut j = i + 1;
        while j < order.len() && xs[order[j]] == xs[order[i]] {
            j += 1;
        }
        // Average 1-based rank of the group.
        let avg = (i + 1 + j) as f64 / 2.0;
        for &idx in &order[i..j] {
            out[idx] = avg;
        }
        i = j;
    }
    out
}

/// Spearman rank correlation coefficient.
///
/// # Panics
/// Panics if the series differ in length or are shorter than 2.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series must have equal length");
    pearson(&ranks(xs), &ranks(ys))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_simple() {
        assert_eq!(ranks(&[10.0, 30.0, 20.0]), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn ranks_with_ties_average() {
        // 5 appears twice at ranks 2 and 3 -> both get 2.5.
        assert_eq!(ranks(&[1.0, 5.0, 5.0, 9.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn monotone_transform_gives_perfect_spearman() {
        let xs: Vec<f64> = (0..80).map(|v| v as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (x + 1.0).ln() * 100.0).collect();
        // Nonlinear but monotone: Pearson < 1, Spearman = 1.
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys) < 0.999);
    }

    #[test]
    fn reversed_order_is_minus_one() {
        let xs: Vec<f64> = (0..50).map(|v| v as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| -x * x).collect();
        assert!((spearman(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_matches_pearson_on_distinct_uniform_ranks() {
        let xs = [3.0, 1.0, 4.0, 1.5, 5.0];
        let ys = [2.0, 7.0, 1.0, 8.0, 2.5];
        let s = spearman(&xs, &ys);
        assert!((-1.0..=1.0).contains(&s));
    }
}
