//! Ordinary least squares, for model calibration and the figure fits.
//!
//! Two uses in the reproduction: fitting the abstract machine's per-category
//! weights to host timings (`wht-search::calibrate`), and reporting the
//! regression line through the paper's scatter plots (Figures 6–8).

/// Result of a simple (one-regressor) least-squares fit `y = a + b*x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Intercept `a`.
    pub intercept: f64,
    /// Slope `b`.
    pub slope: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

/// Fit `y = a + b*x` by least squares.
///
/// # Panics
/// Panics if lengths differ or fewer than 2 points are given.
pub fn fit_line(xs: &[f64], ys: &[f64]) -> LineFit {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2);
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let (mut sxx, mut sxy, mut syy) = (0.0, 0.0, 0.0);
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
        syy += (y - my) * (y - my);
    }
    let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
    let intercept = my - slope * mx;
    let r_squared = if sxx > 0.0 && syy > 0.0 {
        (sxy * sxy) / (sxx * syy)
    } else {
        0.0
    };
    LineFit {
        intercept,
        slope,
        r_squared,
    }
}

/// Multiple linear regression without intercept: find `w` minimizing
/// `||X w - y||^2`, where `rows[i]` is the i-th row of `X`.
///
/// Solves the normal equations `(X^T X) w = X^T y` by Gaussian elimination
/// with partial pivoting; returns `None` if the system is singular (e.g.
/// collinear predictor columns). Non-negative weights are *not* enforced —
/// callers clamp if their domain requires it.
///
/// # Panics
/// Panics if rows have inconsistent lengths or there are fewer rows than
/// predictors.
pub fn least_squares(rows: &[Vec<f64>], y: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(rows.len(), y.len());
    assert!(!rows.is_empty());
    let k = rows[0].len();
    assert!(rows.iter().all(|r| r.len() == k), "ragged design matrix");
    assert!(rows.len() >= k, "need at least as many rows as predictors");

    // Build the normal equations.
    let mut ata = vec![vec![0.0f64; k]; k];
    let mut aty = vec![0.0f64; k];
    for (row, &yi) in rows.iter().zip(y.iter()) {
        for i in 0..k {
            aty[i] += row[i] * yi;
            for j in 0..k {
                ata[i][j] += row[i] * row[j];
            }
        }
    }
    solve(ata, aty)
}

/// Ridge regression without intercept: minimize
/// `||X w - y||^2 + lambda * ||w||^2`.
///
/// `lambda > 0` makes the normal equations positive definite, so this never
/// fails on collinear columns (the weight mass is split across them) — the
/// right tool when predictors are structurally dependent, as the WHT
/// operation categories are (loads == stores exactly, addr == 2*loads).
///
/// # Panics
/// Same input requirements as [`least_squares`], plus `lambda > 0`.
pub fn ridge_regression(rows: &[Vec<f64>], y: &[f64], lambda: f64) -> Vec<f64> {
    assert!(lambda > 0.0, "lambda must be positive");
    assert_eq!(rows.len(), y.len());
    assert!(!rows.is_empty());
    let k = rows[0].len();
    assert!(rows.iter().all(|r| r.len() == k), "ragged design matrix");

    let mut ata = vec![vec![0.0f64; k]; k];
    let mut aty = vec![0.0f64; k];
    for (row, &yi) in rows.iter().zip(y.iter()) {
        for i in 0..k {
            aty[i] += row[i] * yi;
            for j in 0..k {
                ata[i][j] += row[i] * row[j];
            }
        }
    }
    // Scale the penalty to the design's magnitude so lambda is unitless.
    let trace: f64 = (0..k).map(|i| ata[i][i]).sum();
    let penalty = lambda * (trace / k as f64).max(f64::MIN_POSITIVE);
    for (i, row) in ata.iter_mut().enumerate() {
        row[i] += penalty;
    }
    solve(ata, aty).expect("ridge-regularized system is positive definite")
}

/// Gaussian elimination with partial pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None; // singular
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        #[allow(clippy::needless_range_loop)] // a[row] and a[col] alias rows of `a`
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            for c in col..n {
                a[row][c] -= f * a[col][c];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for c in row + 1..n {
            acc -= a[row][c] * x[c];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_fit_exact() {
        let xs: Vec<f64> = (0..50).map(|v| v as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 + 2.5 * x).collect();
        let f = fit_line(&xs, &ys);
        assert!((f.intercept - 3.0).abs() < 1e-9);
        assert!((f.slope - 2.5).abs() < 1e-9);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn line_fit_with_noise_has_r2_below_one() {
        let xs: Vec<f64> = (0..100).map(|v| v as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 2.0 * x + if i % 2 == 0 { 5.0 } else { -5.0 })
            .collect();
        let f = fit_line(&xs, &ys);
        assert!(f.r_squared < 1.0);
        assert!((f.slope - 2.0).abs() < 0.05);
    }

    #[test]
    fn least_squares_recovers_planted_weights() {
        // y = 2*x0 + 0.5*x1 + 7*x2, exactly.
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let i = i as f64;
                vec![i, (i * i) % 13.0, (i * 3.0) % 7.0]
            })
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| 2.0 * r[0] + 0.5 * r[1] + 7.0 * r[2])
            .collect();
        let w = least_squares(&rows, &y).expect("non-singular");
        assert!((w[0] - 2.0).abs() < 1e-8);
        assert!((w[1] - 0.5).abs() < 1e-8);
        assert!((w[2] - 7.0).abs() < 1e-8);
    }

    #[test]
    fn ridge_handles_collinear_columns() {
        // Identical columns: least_squares fails, ridge splits the weight.
        let rows: Vec<Vec<f64>> = (1..40).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<f64> = (1..40).map(|i| 6.0 * i as f64).collect();
        let w = ridge_regression(&rows, &y, 1e-9);
        assert!((w[0] + w[1] - 6.0).abs() < 1e-3, "weights {w:?}");
        // Predictions are right even though attribution is split.
        let pred = 10.0 * (w[0] + w[1]);
        assert!((pred - 60.0).abs() < 1e-2);
    }

    #[test]
    fn ridge_matches_ols_on_well_conditioned_data() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, ((i * i) % 17) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[1]).collect();
        let ols = least_squares(&rows, &y).unwrap();
        let ridge = ridge_regression(&rows, &y, 1e-12);
        for (a, b) in ols.iter().zip(ridge.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn singular_design_detected() {
        // Two identical columns.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert!(least_squares(&rows, &y).is_none());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_panics() {
        least_squares(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0]);
    }
}
