//! Bootstrap confidence intervals for correlation coefficients.
//!
//! The paper reports point estimates of rho; for the reproduction's
//! paper-vs-ours tables it is worth knowing how tight those estimates are
//! at 10,000 samples. Percentile bootstrap with a deterministic internal
//! PRNG (no external dependencies, reproducible reports).

use crate::pearson::pearson;

/// A two-sided percentile confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
    /// Point estimate on the full sample.
    pub estimate: f64,
}

/// Percentile-bootstrap CI for `pearson(xs, ys)`.
///
/// `level` is the coverage (e.g. 0.95); `resamples` the number of bootstrap
/// replicates; `seed` makes the report reproducible.
///
/// # Panics
/// Panics if the series differ in length, have fewer than 3 points, or
/// `level` is outside `(0, 1)`.
pub fn bootstrap_pearson_ci(
    xs: &[f64],
    ys: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
) -> ConfidenceInterval {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 3, "need at least 3 points");
    assert!(level > 0.0 && level < 1.0, "level must be in (0,1)");
    let estimate = pearson(xs, ys);
    let n = xs.len();
    let mut state = seed | 1;
    let mut xorshift = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut replicates = Vec::with_capacity(resamples);
    let mut rx = vec![0.0f64; n];
    let mut ry = vec![0.0f64; n];
    for _ in 0..resamples {
        for i in 0..n {
            let idx = (xorshift() % n as u64) as usize;
            rx[i] = xs[idx];
            ry[i] = ys[idx];
        }
        let r = pearson(&rx, &ry);
        if !r.is_nan() {
            replicates.push(r);
        }
    }
    replicates.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let alpha = (1.0 - level) / 2.0;
    let lo = crate::describe::quantile_sorted(&replicates, alpha);
    let hi = crate::describe::quantile_sorted(&replicates, 1.0 - alpha);
    ConfidenceInterval { lo, hi, estimate }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_linear(n: usize, noise: f64) -> (Vec<f64>, Vec<f64>) {
        let xs: Vec<f64> = (0..n).map(|v| v as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                x + noise * (((h >> 40) as f64) / (1u64 << 24) as f64 - 0.5) * n as f64
            })
            .collect();
        (xs, ys)
    }

    #[test]
    fn ci_brackets_the_estimate() {
        let (xs, ys) = noisy_linear(300, 0.3);
        let ci = bootstrap_pearson_ci(&xs, &ys, 400, 0.95, 7);
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert!(ci.lo > 0.5, "strong relation should stay strong: {ci:?}");
        assert!(ci.hi <= 1.0 + 1e-12);
    }

    #[test]
    fn tighter_with_more_data() {
        let (xs1, ys1) = noisy_linear(60, 0.8);
        let (xs2, ys2) = noisy_linear(2000, 0.8);
        let w1 = {
            let ci = bootstrap_pearson_ci(&xs1, &ys1, 300, 0.95, 1);
            ci.hi - ci.lo
        };
        let w2 = {
            let ci = bootstrap_pearson_ci(&xs2, &ys2, 300, 0.95, 1);
            ci.hi - ci.lo
        };
        assert!(w2 < w1, "CI width should shrink with n: {w1} vs {w2}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (xs, ys) = noisy_linear(120, 0.5);
        let a = bootstrap_pearson_ci(&xs, &ys, 200, 0.9, 42);
        let b = bootstrap_pearson_ci(&xs, &ys, 200, 0.9, 42);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "level")]
    fn bad_level_panics() {
        bootstrap_pearson_ci(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0], 10, 1.5, 1);
    }
}
