//! The paper's outlier filter (Section 3).
//!
//! "The samples were filtered for extreme outliers beyond the 'outer
//! fences', i.e. we expect that valid data will lie within a range based on
//! the interquartile range (IQR), specifically:
//! `Q1 - 3.0*IQR(X) < X < Q3 + 3.0*IQR(X)`."
//! (The paper's typesetting garbles the left fence; the standard outer
//! fence — Tukey with multiplier 3 — is intended and implemented here.)

use crate::describe::quartiles;

/// Indices of observations inside the outer fences
/// `(Q1 - mult*IQR, Q3 + mult*IQR)`; the paper uses `mult = 3.0`.
pub fn fence_mask(xs: &[f64], mult: f64) -> Vec<bool> {
    let (q1, q3, iqr) = quartiles(xs);
    let lo = q1 - mult * iqr;
    let hi = q3 + mult * iqr;
    xs.iter().map(|&x| x > lo && x < hi).collect()
}

/// Filter parallel series by the outer fences of the *first* series
/// (the paper filters on performance and drops the whole observation).
/// Returns the row indices kept.
pub fn outer_fence_filter(primary: &[f64], mult: f64) -> Vec<usize> {
    fence_mask(primary, mult)
        .into_iter()
        .enumerate()
        .filter_map(|(i, keep)| keep.then_some(i))
        .collect()
}

/// Apply a row selection (from [`outer_fence_filter`]) to any series.
pub fn select<T: Copy>(xs: &[T], keep: &[usize]) -> Vec<T> {
    keep.iter().map(|&i| xs[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_bulk_drops_extremes() {
        let mut xs: Vec<f64> = (0..100).map(|v| 50.0 + (v % 10) as f64).collect();
        xs.push(1e9); // wild outlier
        xs.push(-1e9);
        let keep = outer_fence_filter(&xs, 3.0);
        assert_eq!(keep.len(), 100);
        assert!(!keep.contains(&100));
        assert!(!keep.contains(&101));
    }

    #[test]
    fn no_outliers_keeps_everything() {
        let xs: Vec<f64> = (0..50).map(|v| v as f64).collect();
        let keep = outer_fence_filter(&xs, 3.0);
        assert_eq!(keep.len(), 50);
    }

    #[test]
    fn select_applies_row_mask() {
        let keep = vec![0usize, 2];
        assert_eq!(select(&[10, 20, 30], &keep), vec![10, 30]);
        assert_eq!(select(&[1.5, 2.5, 3.5], &keep), vec![1.5, 3.5]);
    }

    #[test]
    fn tight_cluster_with_moderate_tail() {
        // Values within 3*IQR of the quartiles survive even if far from the
        // median.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let keep = outer_fence_filter(&xs, 3.0);
        assert_eq!(keep.len(), 8);
    }
}
