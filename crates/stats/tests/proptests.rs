//! Property tests for the statistics toolkit.

use proptest::prelude::*;
use wht_stats::{
    describe, fence_mask, grid_search_combined, pearson, quantile, quartiles, ranks, spearman,
    Histogram, PruneCurve,
};

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn describe_bounds(xs in finite_vec(1..200)) {
        let d = describe(&xs);
        prop_assert!(d.min <= d.mean && d.mean <= d.max);
        prop_assert!(d.variance >= 0.0);
        prop_assert!(d.std_dev >= 0.0);
        prop_assert_eq!(d.len, xs.len());
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(xs in finite_vec(1..150), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo);
        let b = quantile(&xs, hi);
        prop_assert!(a <= b);
        let d = describe(&xs);
        prop_assert!(a >= d.min && b <= d.max);
    }

    #[test]
    fn quartiles_consistent(xs in finite_vec(4..150)) {
        let (q1, q3, iqr) = quartiles(&xs);
        prop_assert!(q1 <= q3);
        prop_assert!((iqr - (q3 - q1)).abs() < 1e-9);
    }

    #[test]
    fn histogram_conserves_mass(xs in finite_vec(1..300), bins in 1usize..80) {
        let h = Histogram::new(&xs, bins);
        prop_assert_eq!(h.total(), xs.len() as u64);
        prop_assert_eq!(h.bins(), bins);
    }

    #[test]
    fn pearson_is_bounded_and_symmetric(pairs in proptest::collection::vec((-1e5f64..1e5, -1e5f64..1e5), 2..120)) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r = pearson(&xs, &ys);
        if !r.is_nan() {
            prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&r));
            prop_assert!((pearson(&ys, &xs) - r).abs() < 1e-12);
        }
    }

    #[test]
    fn spearman_invariant_under_monotone_transform(xs in finite_vec(3..100)) {
        let ys: Vec<f64> = xs.iter().map(|&x| x * 3.0 + 1.0).collect();
        let s = spearman(&xs, &ys);
        if !s.is_nan() {
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ranks_are_a_permutation_mean(xs in finite_vec(1..120)) {
        let r = ranks(&xs);
        // Ranks (with average ties) always sum to n(n+1)/2.
        let n = xs.len() as f64;
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn fences_keep_the_quartile_core(xs in finite_vec(4..200)) {
        let mask = fence_mask(&xs, 3.0);
        let (q1, q3, _) = quartiles(&xs);
        for (i, &x) in xs.iter().enumerate() {
            if x >= q1 && x <= q3 {
                prop_assert!(mask[i], "value inside the IQR must survive");
            }
        }
    }

    #[test]
    fn prune_curve_is_monotone(xs in finite_vec(8..150), p in 0.01f64..0.5) {
        let ys: Vec<f64> = xs.iter().map(|&x| x * 0.5 + 3.0).collect();
        let c = PruneCurve::new(&xs, &ys, p);
        for w in c.fraction.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert!(c.limit() <= 1.0);
    }

    #[test]
    fn grid_search_best_cell_is_max(
        data in proptest::collection::vec((1u64..10_000, 1u64..10_000, 1.0f64..1e6), 4..60)
    ) {
        let i: Vec<u64> = data.iter().map(|d| d.0).collect();
        let m: Vec<u64> = data.iter().map(|d| d.1).collect();
        let c: Vec<f64> = data.iter().map(|d| d.2).collect();
        let res = grid_search_combined(&i, &m, &c, 0.25);
        for row in &res.rho {
            for &r in row {
                if !r.is_nan() {
                    prop_assert!(r <= res.best_rho + 1e-12);
                }
            }
        }
    }
}
