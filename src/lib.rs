//! # wht — reproduction of *Performance Analysis of a Family of WHT
//! Algorithms* (Andrews & Johnson, 2007)
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`core`] (`wht-core`) | split-tree plans, unrolled codelets, the in-place strided interpreter, and the compiled-plan layer ([`CompiledPlan`](wht_core::CompiledPlan)) behind `apply_plan`: a staged lowering pipeline — cache-blocked pass fusion ([`FusionPolicy`](wht_core::FusionPolicy)) → DDL tail relayout ([`RelayoutPolicy`](wht_core::RelayoutPolicy)) → re-codeleting ([`RecodeletPolicy`](wht_core::RecodeletPolicy)) → SIMD lane-block kernel selection ([`SimdPolicy`](wht_core::SimdPolicy)) → batched-small cross-transform scheduling ([`BatchPolicy`](wht_core::BatchPolicy), behind [`CompiledPlan::apply_batch`](wht_core::CompiledPlan::apply_batch)) → streaming-store/prefetch memory codelets for out-of-LLC replay ([`StreamPolicy`](wht_core::StreamPolicy)) — driven by one [`ExecPolicy`](wht_core::ExecPolicy), on by default (every stage has a `WHT_NO_*` kill switch; see `wht_core::env` for the knob table); plus SRHT sketching ([`Srht`](wht_core::Srht)) fused into the batched executor, and the static schedule safety verifier ([`CompiledPlan::verify`](wht_core::CompiledPlan::verify)) proving bounds, write-disjointness, coverage, and scratch sizing of every lowered schedule |
//! | [`space`] (`wht-space`) | algorithm-space counting, enumeration, the recursive-split-uniform sampler |
//! | [`models`] (`wht-models`) | instruction-count model, direct-mapped cache-miss model, combined model, theory |
//! | [`cachesim`] (`wht-cachesim`) | set-associative LRU cache simulator (Opteron presets) |
//! | [`measure`] (`wht-measure`) | timing, instrumented execution, trace-driven miss measurement |
//! | [`stats`] (`wht-stats`) | Pearson, histograms, IQR fences, pruning curves, grid search |
//! | [`search`] (`wht-search`) | plan search: the memoized branch-and-bound engine ([`memo_search`](wht_search::memo_search) over a [`MemoTable`](wht_search::MemoTable) of factor-span groups with provenance), the classic DP autotuner ([`dp_search`](wht_search::dp_search)), exhaustive/random/model-pruned strategies, vectored cost backends ([`VectorCost`](wht_search::VectorCost): one term vector, objective-driven weightings via [`CostObjective`](wht_search::CostObjective)), the [`Planner`](wht_search::Planner) facade with wisdom caching, and crash-safe wisdom persistence: the sharded [`ShardedStore`](wht_search::ShardedStore) (atomic commit, typed [`StoreDiagnostic`](wht_search::StoreDiagnostic) quarantine, keep-best merge) with a hermetic fault-injection layer (`wht_search::failpoints`, `WHT_FAILPOINTS`) |
//! | [`parallel`] (`wht-parallel`) | multi-threaded WHT over a persistent NUMA-aware [`WorkerPool`](wht_parallel::WorkerPool) (zero spawn/join on the warm path, stable shard ranges with work stealing, [`PoolStats`](wht_parallel::PoolStats) introspection), scoped spawn-per-call crews as baseline/overflow, and parallel measurement sweeps |
//!
//! ## Quick start
//!
//! ```
//! use wht::prelude::*;
//!
//! // Parse a plan in the WHT package's grammar and run it.
//! let plan: Plan = "split[small[2],small[3]]".parse()?;
//! let mut x: Vec<f64> = (0..32).map(|v| v as f64).collect();
//! let want = naive_wht(&x);
//! apply_plan(&plan, &mut x)?;
//! assert_eq!(x, want);
//!
//! // Model its cost without running it (the paper's central trick):
//! let instructions = instruction_count(&plan, &CostModel::default());
//! let misses = analytic_misses(&plan, ModelCache::opteron_l1_elems());
//! assert!(instructions > 0 && misses >= 32);
//!
//! // Production path: a Planner picks and compiles the best plan per
//! // size, amortizing search through its wisdom cache.
//! let mut planner = Planner::new(InstructionCost::default());
//! let mut y: Vec<f64> = (0..64).map(|v| (v % 3) as f64).collect();
//! let expect = naive_wht(&y);
//! planner.transform(&mut y)?;
//! assert_eq!(y, expect);
//! # Ok::<(), wht::WhtError>(())
//! ```

#![warn(missing_docs)]

pub use wht_cachesim as cachesim;
pub use wht_core as core;
pub use wht_measure as measure;
pub use wht_models as models;
pub use wht_parallel as parallel;
pub use wht_search as search;
pub use wht_space as space;
pub use wht_stats as stats;

pub use wht_core::{Plan, WhtError};

/// The items most programs need, in one import.
pub mod prelude {
    pub use wht_cachesim::{Cache, CacheConfig, Hierarchy};
    pub use wht_core::{
        apply_plan, apply_plan_recursive, compiled_for_exec, compiled_for_with, lane_width,
        naive_wht, parse_plan, to_sequency_order, BatchPolicy, CompiledPlan, ExecPolicy,
        FusionPolicy, Pass, PassBackend, Plan, Provenance, RecodeletPolicy, Relayout,
        RelayoutPolicy, Scalar, SimdPolicy, Srht, StreamPolicy, SuperPass, VerifyDiagnostic,
        VerifyInvariant, WhtError,
    };
    pub use wht_measure::{
        batch_op_counts, batch_super_pass_traffic, measure_plan, super_pass_traffic,
        time_compiled_plan, time_plan, MeasureOptions, Measurement, PoolReport, SimMachine,
        SuperPassTraffic, TimingConfig,
    };
    pub use wht_models::{
        analytic_misses, instruction_count, op_counts, CombinedModel, CostModel, ModelCache,
    };
    pub use wht_parallel::{
        measure_sweep, par_apply_batch, par_apply_batch_on, par_apply_compiled,
        par_apply_compiled_on, par_apply_compiled_scoped, par_apply_plan, PoolStats, Threads,
        WorkerPool,
    };
    pub use wht_search::{
        atomic_write, dp_search, memo_search, pruned_search, random_search, CombinedModelCost,
        CostObjective, CostVec, CostWeights, DpOptions, FusedTrafficCost, InstructionCost,
        MemoTable, PlanCost, PlanProvenance, Planner, ShardedStore, SimCyclesCost, StoreDiagnostic,
        StoreLoad, Tuning, VectorCost, WallClockCost, Wisdom,
    };
    pub use wht_space::{plan_count, sample_plans_seeded, Sampler};
    pub use wht_stats::{describe, pearson, Histogram, PruneCurve};
}
