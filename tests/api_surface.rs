//! Facade-level API exercises: everything a downstream user reaches through
//! `wht::prelude` and the extension modules, composed the way an
//! application would.

use wht::prelude::*;

#[test]
fn prelude_covers_the_whole_pipeline() {
    // plan -> run -> model -> search, all through the prelude.
    let plan: Plan = "split[small[2],split[small[3],small[2]]]".parse().unwrap();
    assert_eq!(plan.n(), 7);

    let mut x: Vec<f64> = (0..128).map(|v| (v % 13) as f64).collect();
    let want = naive_wht(&x);
    apply_plan(&plan, &mut x).unwrap();
    assert_eq!(x, want);

    let i = instruction_count(&plan, &CostModel::default());
    let m = analytic_misses(&plan, ModelCache::opteron_l1_elems());
    assert!(CombinedModel::paper_optimum().value(i, m) > 0.0);

    let mut cost = InstructionCost::default();
    let dp = dp_search(7, &DpOptions::default(), &mut cost).unwrap();
    assert!(cost.cost(dp.best_plan()).unwrap() <= i as f64);
}

#[test]
fn compiled_layer_and_planner_through_the_prelude() {
    // Compile once, replay sequentially and in parallel, bit-identically.
    let plan: Plan = "split[small[1],split[small[4],small[3]]]".parse().unwrap();
    let compiled = CompiledPlan::compile(&plan);
    assert_eq!(compiled.passes().len(), plan.leaf_count());
    let input: Vec<f64> = (0..256).map(|v| ((v * 11) % 23) as f64 - 11.0).collect();
    let mut interp = input.clone();
    apply_plan_recursive(&plan, &mut interp).unwrap();
    let mut flat = input.clone();
    compiled.apply(&mut flat).unwrap();
    assert_eq!(flat, interp);
    let mut par = input;
    par_apply_compiled(&compiled, &mut par, Threads(4)).unwrap();
    assert_eq!(par, interp);

    // Planner: search once, export wisdom, serve warm with zero searches.
    let mut planner = Planner::new(InstructionCost::default());
    let mut x: Vec<f64> = (0..128).map(|v| (v % 9) as f64).collect();
    let want = naive_wht(&x);
    planner.transform(&mut x).unwrap();
    assert_eq!(x, want);
    let wisdom = Wisdom::from_json(&planner.wisdom().to_json()).unwrap();
    let mut warm = Planner::new(InstructionCost::default()).with_wisdom(wisdom);
    let mut y: Vec<f64> = (0..128).map(|v| (v % 9) as f64).collect();
    warm.transform(&mut y).unwrap();
    assert_eq!(y, want);
    assert_eq!(warm.evaluations(), 0);

    // The compiled timing entry point is part of the prelude, too.
    let t = time_compiled_plan(&compiled, &TimingConfig::fast()).unwrap();
    assert!(t.median_ns > 0.0);
}

#[test]
fn fusion_layer_through_the_prelude() {
    // Fuse, replay sequentially and in parallel, measure per-super-pass
    // traffic, and cost a plan fusion-aware — all prelude items.
    let plan = Plan::iterative(12).unwrap();
    let compiled = CompiledPlan::compile(&plan);
    let fused = compiled.fuse(&FusionPolicy::new(1 << 6));
    assert!(fused.is_fused());
    assert_eq!(fused.passes(), compiled.passes());

    let input: Vec<f64> = (0..1 << 12)
        .map(|v| ((v * 13) % 31) as f64 - 15.0)
        .collect();
    let mut seq = input.clone();
    compiled.apply(&mut seq).unwrap();
    let mut tiled = input.clone();
    fused.apply(&mut tiled).unwrap();
    assert_eq!(tiled, seq);
    let mut par = input.clone();
    par_apply_compiled(&fused, &mut par, Threads(4)).unwrap();
    assert_eq!(par, seq);

    // The explicit-policy cache entry point honors every opt-out.
    let via_cache = compiled_for_with(
        &plan,
        &FusionPolicy::disabled(),
        &RelayoutPolicy::disabled(),
        &SimdPolicy::disabled(),
    );
    assert!(!via_cache.is_fused());
    assert!(!via_cache.is_simd());
    assert!(!via_cache.has_relayout());
    let mut unfused = input.clone();
    via_cache.apply(&mut unfused).unwrap();
    assert_eq!(unfused, seq);

    // And the SIMD lane backend is prelude-reachable and bit-identical.
    let lanes = compiled_for_with(
        &plan,
        &FusionPolicy::new(1 << 6),
        &RelayoutPolicy::disabled(),
        &SimdPolicy::auto(),
    );
    assert!(lanes.is_simd());
    let mut simd = input.clone();
    lanes.apply(&mut simd).unwrap();
    assert_eq!(simd, seq);

    // The relayout stage is prelude-reachable, bit-identical, and
    // parallel-safe through the facade.
    let relaid = fused.relayout(&RelayoutPolicy::eager(1 << 8));
    assert!(relaid.has_relayout());
    let mut gathered = input.clone();
    relaid.apply(&mut gathered).unwrap();
    assert_eq!(gathered, seq);
    let mut par_gathered = input;
    par_apply_compiled(&relaid, &mut par_gathered, Threads(4)).unwrap();
    assert_eq!(par_gathered, seq);

    let mut h = Hierarchy::opteron();
    let report: Vec<SuperPassTraffic> = super_pass_traffic(&fused, &mut h);
    assert_eq!(report.len(), fused.super_passes().len());
    assert!(report[0].parts > 1);

    let mut cost = FusedTrafficCost::default();
    assert!(cost.cost(&plan).unwrap() > 0.0);
}

#[test]
fn ddl_engine_is_a_drop_in_replacement() {
    use wht::core::ddl::{apply_plan_ddl, DdlConfig};
    // n = 15 is past the simulated L1 (2^13 doubles), where relayout pays.
    let plan = Plan::left_recursive(15).unwrap();
    let input: Vec<f64> = (0..1 << 15).map(|v| ((v * 7) % 29) as f64 - 14.0).collect();
    let mut plain = input.clone();
    apply_plan(&plan, &mut plain).unwrap();
    let mut ddl = input;
    apply_plan_ddl(&plan, &mut ddl, DdlConfig::default()).unwrap();
    assert_eq!(plain, ddl);

    // And it does what it exists for: fewer L1 misses on the hostile shape.
    let mut h = Hierarchy::opteron();
    let base = wht::measure::trace_misses(&plan, &mut h)[0].misses;
    let relayout = wht::measure::ddl_trace_misses(&plan, &mut h, 3)[0].misses;
    assert!(relayout < base, "DDL {relayout} should beat {base} at n=15");
}

#[test]
fn calibration_feeds_search() {
    use rand::SeedableRng;
    use wht::search::{calibrate, CalibrateOptions};
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let opts = CalibrateOptions {
        samples_per_size: 20,
        sizes: [6, 8, 10],
        timing: TimingConfig::fast(),
    };
    let mut model = calibrate(&opts, &mut rng).unwrap();
    // The calibrated model plugs straight into the DP autotuner.
    let dp = dp_search(10, &DpOptions::default(), &mut model).unwrap();
    assert_eq!(dp.best_plan().n(), 10);
    assert!(dp.best_cost() > 0.0);
}

#[test]
fn spectral_toolchain() {
    use wht::core::dyadic::dyadic_convolution;
    use wht::core::dyadic::dyadic_convolution_naive;
    use wht::core::twod::apply_plan_2d;

    // 1-D dyadic convolution through a fast plan.
    let plan = Plan::balanced(6, 3).unwrap();
    let x: Vec<f64> = (0..64).map(|v| ((v * 3) % 7) as f64).collect();
    let y: Vec<f64> = (0..64).map(|v| ((v * 5) % 11) as f64 - 5.0).collect();
    let fast = dyadic_convolution(&plan, &x, &y).unwrap();
    let slow = dyadic_convolution_naive(&x, &y);
    for (a, b) in fast.iter().zip(slow.iter()) {
        assert!((a - b).abs() < 1e-7);
    }

    // 2-D transform and sequency reordering compose.
    let rp = Plan::leaf(3).unwrap();
    let cp = Plan::leaf(3).unwrap();
    let mut img: Vec<f64> = (0..64).map(|v| (v / 8) as f64).collect();
    apply_plan_2d(&rp, &cp, &mut img).unwrap();
    let row0: Vec<f64> = img[..8].to_vec();
    let seq = to_sequency_order(&row0);
    assert_eq!(seq.len(), 8);
}

#[test]
fn parallel_and_sweep_through_facade() {
    let plan = Plan::balanced(11, 4).unwrap();
    let mut x: Vec<f64> = (0..1 << 11).map(|v| (v % 5) as f64).collect();
    let want = {
        let mut s = x.clone();
        apply_plan(&plan, &mut s).unwrap();
        s
    };
    par_apply_plan(&plan, &mut x, Threads(5)).unwrap();
    assert_eq!(x, want);

    let plans = vec![
        Plan::iterative(8).unwrap(),
        Plan::right_recursive(8).unwrap(),
    ];
    let opts = MeasureOptions {
        timing: None,
        ..MeasureOptions::default()
    };
    let h = Hierarchy::opteron();
    let ms = measure_sweep(&plans, &opts, &h, 2).unwrap();
    assert_eq!(ms.len(), 2);
    assert!(ms[0].instructions < ms[1].instructions); // iterative < right
}

#[test]
fn wisdom_store_through_the_prelude() {
    // Search, persist into a sharded store, restart cold, replay warm —
    // with the commit path and diagnostics all prelude-reachable.
    let dir = std::env::temp_dir().join(format!("wht_api_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut planner = Planner::new(InstructionCost::default());
    let mut x: Vec<f64> = (0..64).map(|v| (v % 7) as f64).collect();
    let want = naive_wht(&x);
    planner.transform(&mut x).unwrap();
    assert_eq!(x, want);

    let store = ShardedStore::open(&dir).unwrap();
    let written = planner.save_store(&store).unwrap();
    assert!(written > 0);

    let loaded: StoreLoad = store.load();
    assert!(loaded.diagnostics.is_empty());
    let mut warm = Planner::new(InstructionCost::default()).with_store(&store);
    let mut y: Vec<f64> = (0..64).map(|v| (v % 7) as f64).collect();
    warm.transform(&mut y).unwrap();
    assert_eq!(y, want);
    assert_eq!(warm.evaluations(), 0);

    // Winner provenance survives the restart and renders through explain.
    let backend = warm.backend_name().to_string();
    let p: &PlanProvenance = warm
        .wisdom()
        .provenance(6, &backend)
        .expect("persisted provenance");
    assert!(p.candidates >= p.evaluated);
    assert!(warm
        .explain(6)
        .expect("replayed")
        .contains("replayed from wisdom"));

    // The raw atomic commit helper and typed diagnostics are exported too.
    let blob = dir.join("extra.bin");
    atomic_write(&blob, b"payload").unwrap();
    assert_eq!(std::fs::read(&blob).unwrap(), b"payload");
    let diag = StoreDiagnostic::Corrupt {
        shard: "x.shard".into(),
        detail: "demo".into(),
    };
    assert_eq!(diag.kind(), "corrupt");
    let _ = std::fs::remove_dir_all(&dir);
}
