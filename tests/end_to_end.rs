//! Cross-crate integration tests: the paper's pipeline, end to end, at
//! test-friendly sizes, asserting the qualitative claims the figures
//! reproduce at full scale.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wht::prelude::*;
use wht_measure::measured_op_counts;
use wht_stats::{outer_fence_filter, select};

/// Sample → measure (deterministic backends) → correlate: the Figure 6/9
/// program. In the simulated world cycles are a noiseless function of
/// instructions and misses, so correlations must be strongly positive.
#[test]
fn sample_measure_correlate_pipeline() {
    let n = 11u32;
    let samples = 250usize;
    let plans = sample_plans_seeded(n, samples, 42).unwrap();
    let opts = MeasureOptions {
        timing: None,
        ..MeasureOptions::default()
    };
    let hierarchy = Hierarchy::opteron();
    let ms = measure_sweep(&plans, &opts, &hierarchy, 8).unwrap();

    let cycles: Vec<f64> = ms.iter().map(|m| m.sim_cycles.unwrap()).collect();
    let instr: Vec<f64> = ms.iter().map(|m| m.instructions as f64).collect();

    let keep = outer_fence_filter(&cycles, 3.0);
    let rho = pearson(&select(&instr, &keep), &select(&cycles, &keep));
    assert!(
        rho > 0.85,
        "in-cache instruction/cycle correlation should be strong, got {rho}"
    );
}

/// The pruning claim (Figures 10/11): filtering by the model retains a
/// top-5% performer with a small survivor set.
#[test]
fn model_pruning_retains_top_performers() {
    let n = 10u32;
    let samples = 400usize;
    let plans = sample_plans_seeded(n, samples, 7).unwrap();
    let cost = CostModel::default();
    let model: Vec<f64> = plans
        .iter()
        .map(|p| instruction_count(p, &cost) as f64)
        .collect();

    let opts = MeasureOptions {
        timing: None,
        ..MeasureOptions::default()
    };
    let hierarchy = Hierarchy::opteron();
    let ms = measure_sweep(&plans, &opts, &hierarchy, 8).unwrap();
    let cycles: Vec<f64> = ms.iter().map(|m| m.sim_cycles.unwrap()).collect();

    let curve = PruneCurve::new(&model, &cycles, 0.05);
    assert!((curve.limit() - 0.95).abs() < 0.05);
    let safe = PruneCurve::safe_prune_threshold(&model, &cycles, 0.05);
    let survivors = model.iter().filter(|&&m| m <= safe).count();
    // Pruning at the safe threshold should discard a useful chunk of the
    // space while keeping at least one top-5% plan (by construction).
    assert!(survivors >= 1);
    assert!(
        survivors <= samples / 2,
        "model should prune at least half the sample, kept {survivors}"
    );
}

/// The full story of Figure 1 on the deterministic machine: in cache the
/// instruction-lean iterative algorithm wins among canonicals; far out of
/// cache the localizing right-recursion wins; DP's best beats all three.
#[test]
fn canonical_ordering_flips_across_the_hierarchy() {
    let mut sim = SimCyclesCost::opteron();

    // In cache (n = 10): iterative < right < left.
    let it = sim.cost(&Plan::iterative(10).unwrap()).unwrap();
    let rr = sim.cost(&Plan::right_recursive(10).unwrap()).unwrap();
    let lr = sim.cost(&Plan::left_recursive(10).unwrap()).unwrap();
    assert!(it < rr && rr < lr, "in cache: {it} {rr} {lr}");

    // Past the L2 boundary (n = 19): right recursive beats iterative;
    // left recursive is the off-scale outlier.
    let it = sim.cost(&Plan::iterative(19).unwrap()).unwrap();
    let rr = sim.cost(&Plan::right_recursive(19).unwrap()).unwrap();
    let lr = sim.cost(&Plan::left_recursive(19).unwrap()).unwrap();
    assert!(
        rr < it,
        "out of cache: right {rr} should beat iterative {it}"
    );
    assert!(
        lr > 2.0 * rr,
        "left {lr} should be far worse than right {rr}"
    );

    // DP-found best beats every canonical at both sizes.
    let dp = dp_search(10, &DpOptions::default(), &mut sim).unwrap();
    let best10 = dp.cost(10).unwrap();
    assert!(best10 <= it.min(rr).min(lr));
}

/// Instruction model == instrumented measurement == engine work, linked by
/// the flop invariant (n * 2^n butterflies for every plan).
#[test]
fn model_measurement_and_engine_are_consistent() {
    let mut rng = StdRng::seed_from_u64(3);
    let sampler = Sampler::default();
    for n in [4u32, 9, 13] {
        for _ in 0..10 {
            let plan = sampler.sample(n, &mut rng).unwrap();
            let counts = measured_op_counts(&plan);
            assert_eq!(counts, op_counts(&plan));
            assert_eq!(counts.arith, u64::from(n) << n);
            // Engine agrees with the definition.
            let size = plan.size();
            let input: Vec<f64> = (0..size).map(|j| ((j % 16) as f64) - 8.0).collect();
            let want = naive_wht(&input);
            let mut got = input;
            apply_plan(&plan, &mut got).unwrap();
            assert_eq!(got, want);
        }
    }
}

/// The combined model's grid search recovers a sensible optimum on
/// deterministic data (rho must beat instruction-only correlation at an
/// out-of-cache size).
#[test]
fn combined_model_improves_out_of_cache_correlation() {
    let n = 15u32;
    let samples = 200usize;
    let plans = sample_plans_seeded(n, samples, 99).unwrap();
    let opts = MeasureOptions {
        timing: None,
        ..MeasureOptions::default()
    };
    let hierarchy = Hierarchy::opteron();
    let ms = measure_sweep(&plans, &opts, &hierarchy, 8).unwrap();
    let cycles: Vec<f64> = ms.iter().map(|m| m.sim_cycles.unwrap()).collect();
    let instr: Vec<u64> = ms.iter().map(|m| m.instructions).collect();
    let misses: Vec<u64> = ms.iter().map(|m| m.l1_misses.unwrap()).collect();

    let instr_f: Vec<f64> = instr.iter().map(|&v| v as f64).collect();
    let rho_i = pearson(&instr_f, &cycles);
    let grid = wht_stats::grid_search_combined(&instr, &misses, &cycles, 0.05);
    assert!(
        grid.best_rho >= rho_i,
        "combined rho {} must be >= instruction rho {rho_i}",
        grid.best_rho
    );
    assert!(
        grid.best_rho > 0.9,
        "deterministic combined rho should be high"
    );
}

/// Golden vectors through the full production path: `Planner::transform`
/// with fusion on and off against the naive and fast references. Integer
/// golden vectors are exact (the WHT matrix has ±1 entries), so both
/// executor configurations must reproduce them bit for bit — and each
/// other, since fusion only reorders provably-commuting invocations.
#[test]
fn planner_fusion_on_and_off_match_golden_vectors() {
    use wht::core::testkit::{random_signal, reference_wht};
    use wht::core::{max_abs_diff, FusionPolicy};
    for n in [8u32, 12] {
        let size = 1usize << n;
        let ints: Vec<i64> = random_signal(size, 2026 + u64::from(n));
        let golden = reference_wht(&ints);
        let floats: Vec<f64> = ints.iter().map(|&v| v as f64).collect();
        let golden_f = naive_wht(&floats);

        let mut fused =
            Planner::new(InstructionCost::default()).with_fusion(FusionPolicy::new(1 << 8));
        let mut unfused =
            Planner::new(InstructionCost::default()).with_fusion(FusionPolicy::disabled());

        let mut a = ints.clone();
        fused.transform(&mut a).unwrap();
        assert_eq!(a, golden, "fused integer path must hit the golden vector");
        let mut b = ints.clone();
        unfused.transform(&mut b).unwrap();
        assert_eq!(b, golden, "unfused integer path must hit the golden vector");

        let mut fa = floats.clone();
        fused.transform(&mut fa).unwrap();
        assert!(max_abs_diff(&fa, &golden_f) < 1e-9);
        let mut fb = floats;
        unfused.transform(&mut fb).unwrap();
        assert_eq!(
            fa, fb,
            "fused and unfused production paths must agree bit for bit"
        );
    }
}

/// The FFTW-style wisdom workflow carries the executor configuration:
/// the tile budget a planner tuned with survives the JSON round trip and
/// governs the importing planner's compilation for that size.
#[test]
fn wisdom_round_trip_preserves_the_recorded_tile_budget() {
    use wht::core::FusionPolicy;
    let budget = 4096usize;
    let mut tuned = Planner::new(InstructionCost::default()).with_fusion(FusionPolicy::new(budget));
    let mut x: Vec<f64> = (0..1 << 10).map(|j| (j % 23) as f64 - 11.0).collect();
    let want = naive_wht(&x);
    tuned.transform(&mut x).unwrap();
    assert!(wht::core::max_abs_diff(&x, &want) < 1e-9);

    let json = tuned.wisdom().to_json();
    assert!(json.contains("fuse_budget"), "budget must be serialized");
    let restored = Wisdom::from_json(&json).unwrap();
    assert_eq!(&restored, tuned.wisdom());
    assert_eq!(restored.fuse_budget(10, tuned.backend_name()), Some(budget));

    // A warm import serves the size with zero searches under the
    // recorded budget.
    let mut warm = Planner::new(InstructionCost::default()).with_wisdom(restored);
    let mut y: Vec<f64> = (0..1 << 10).map(|j| (j % 23) as f64 - 11.0).collect();
    warm.transform(&mut y).unwrap();
    assert!(wht::core::max_abs_diff(&y, &want) < 1e-9);
    assert_eq!(warm.evaluations(), 0);
    assert_eq!(
        warm.wisdom().fuse_budget(10, warm.backend_name()),
        Some(budget)
    );
}

/// The wisdom workflow carries the relayout tuning end to end: a planner
/// tuned with an eager relayout policy records it per size, the record
/// survives JSON, and the full executor pipeline (fusion + relayout +
/// SIMD) reproduces the integer golden vectors bit for bit against the
/// in-place configurations.
#[test]
fn planner_relayout_round_trips_and_matches_golden_vectors() {
    use wht::core::testkit::{random_signal, reference_wht};
    use wht::core::{FusionPolicy, RelayoutPolicy};
    let n = 14u32;
    let ints: Vec<i64> = random_signal(1usize << n, 4242);
    let golden = reference_wht(&ints);

    let mut tuned = Planner::new(InstructionCost::default())
        .with_fusion(FusionPolicy::new(1 << 6))
        .with_relayout(RelayoutPolicy::eager(1 << 9));
    let mut a = ints.clone();
    tuned.transform(&mut a).unwrap();
    assert_eq!(a, golden, "relayout path must hit the golden vector");
    // The wisdom record reflects what the executor actually compiled for
    // this size: the budget where the chosen plan's schedule relayouts,
    // 0 where its tail is too short to gather.
    let chosen = tuned.plan(n).unwrap().clone();
    let executed = wht::core::CompiledPlan::compile(&chosen)
        .fuse(&tuned.fusion())
        .relayout(&tuned.relayout())
        .has_relayout();
    assert_eq!(
        tuned.wisdom().relayout_budget(n, tuned.backend_name()),
        Some(if executed { 1 << 9 } else { 0 })
    );

    let json = tuned.wisdom().to_json();
    assert!(json.contains("relayout"), "tuning must be serialized");
    let restored = Wisdom::from_json(&json).unwrap();
    assert_eq!(&restored, tuned.wisdom());

    let mut off = Planner::new(InstructionCost::default())
        .with_fusion(FusionPolicy::new(1 << 6))
        .with_relayout(RelayoutPolicy::disabled());
    let mut b = ints.clone();
    off.transform(&mut b).unwrap();
    assert_eq!(b, golden, "in-place tail must hit the same golden vector");
}

/// Sequency-ordered spectrum analysis works through the whole public API.
#[test]
fn sequency_pipeline() {
    // A Walsh function of sequency s must have a one-hot sequency spectrum.
    let n = 8u32;
    let size = 1usize << n;
    let s = 37usize;
    let perm = wht::core::ordering::sequency_permutation(n);
    let nat = perm[s];
    let row: Vec<f64> = (0..size)
        .map(|j| wht::core::reference::hadamard_entry(nat, j) as f64)
        .collect();
    let plan = Plan::balanced(n, 4).unwrap();
    let mut spec = row;
    apply_plan(&plan, &mut spec).unwrap();
    let seq_spec = to_sequency_order(&spec);
    for (i, &v) in seq_spec.iter().enumerate() {
        if i == s {
            assert_eq!(v, size as f64);
        } else {
            assert_eq!(v, 0.0);
        }
    }
}
