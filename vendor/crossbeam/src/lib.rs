//! Offline vendor shim for `crossbeam`: the [`channel`] module only, with
//! multi-producer multi-consumer unbounded channels built on
//! `Mutex<VecDeque>` + `Condvar`. Semantics match what the workspace
//! relies on: cloneable senders *and* receivers, `recv` blocking until a
//! message arrives or every sender is gone, and a blocking [`
//! channel::Receiver::iter`] draining until disconnect.

#![warn(missing_docs)]

/// MPMC unbounded channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error: all receivers disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error: channel empty and all senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Sending half (cloneable).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half (cloneable).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue `value`.
        ///
        /// # Errors
        /// [`SendError`] returning the value if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            state.senders -= 1;
            let last = state.senders == 0;
            drop(state);
            if last {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue, blocking while the channel is empty and senders remain.
        ///
        /// # Errors
        /// [`RecvError`] when empty with every sender gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).expect("channel poisoned");
            }
        }

        /// Blocking iterator draining messages until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .receivers -= 1;
        }
    }

    /// See [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_out_fan_in() {
            let (work_tx, work_rx) = unbounded::<usize>();
            let (res_tx, res_rx) = unbounded::<usize>();
            for i in 0..100 {
                work_tx.send(i).unwrap();
            }
            drop(work_tx);
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let work_rx = work_rx.clone();
                    let res_tx = res_tx.clone();
                    scope.spawn(move || {
                        while let Ok(i) = work_rx.recv() {
                            res_tx.send(i * 2).unwrap();
                        }
                    });
                }
                drop(res_tx);
            });
            let mut got: Vec<usize> = res_rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_when_senders_gone() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_when_receivers_gone() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
