//! Offline vendor shim for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro with `#![proptest_config(...)]`,
//! strategies built from numeric ranges, [`any`], tuples,
//! [`collection::vec`], and [`Strategy::prop_map`], plus the
//! `prop_assert*` macros. Cases are generated from a per-test
//! deterministic seed; there is **no shrinking** — a failing case panics
//! with its inputs' `Debug` rendering instead.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Run-time configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test RNG: FNV-1a of the test path seeds the stream.
pub fn test_rng(test_path: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values (shim: no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 candidates", self.whence);
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

/// Strategy for "any value of `T`" (see [`any`]).
pub struct Any<T>(PhantomData<T>);

/// The full-range strategy for `T: Arbitrary`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_range(0u32..2) == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Element count for [`vec()`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
    /// Alias used by some call sites as `prop::collection::...`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a property (shim: plain panic, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `cases` random instantiations of its body.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                let strategies = ( $( ($strat), )+ );
                for case in 0..config.cases {
                    let ( $($arg,)+ ) = $crate::Strategy::generate(&strategies, &mut rng);
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            let ( $($arg,)+ ) = ( $($arg.clone(),)+ );
                            $body
                        }),
                    );
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {}/{} failed for {}:",
                            case + 1,
                            config.cases,
                            stringify!($name)
                        );
                        $(
                            eprintln!("  {} = {:?}", stringify!($arg), $arg);
                        )+
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 1u32..=9, b in -3i64..3, f in 0.0f64..1.0) {
            prop_assert!((1..=9).contains(&a));
            prop_assert!((-3..3).contains(&b));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_map(xs in crate::collection::vec(0u8..10, 3..7), n in any::<u8>()) {
            prop_assert!(xs.len() >= 3 && xs.len() < 7);
            prop_assert!(xs.iter().all(|&x| x < 10));
            let _ = n;
        }

        #[test]
        fn tuple_prop_map(v in (1u32..4, 1u32..4).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..16).contains(&v));
        }
    }

    #[test]
    fn deterministic_given_same_path() {
        let mut a = crate::test_rng("x::y");
        let mut b = crate::test_rng("x::y");
        let s = 0u64..1000;
        for _ in 0..32 {
            assert_eq!(
                crate::Strategy::generate(&s, &mut a),
                crate::Strategy::generate(&s, &mut b)
            );
        }
    }
}
