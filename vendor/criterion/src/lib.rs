//! Offline vendor shim for `criterion`.
//!
//! Provides the API surface this workspace's benches use — groups,
//! [`BenchmarkId`], [`Throughput`], `bench_function` /
//! `bench_with_input`, and the [`criterion_group!`] / [`criterion_main!`]
//! macros — backed by a simple median-of-batches wall-clock harness that
//! prints one line per benchmark. No statistics engine, no plots, no
//! baseline comparison; honest medians are enough to read relative
//! performance, which is what the quoted results use.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    /// Target measurement time per benchmark.
    pub measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_SHIM_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            measurement: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let mut b = Bencher::new(self.measurement);
        f(&mut b);
        b.report(&id.render(), None);
    }
}

/// A named benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier `function/parameter`.
    pub fn new(function: impl ToString, parameter: impl ToString) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identifier with a bare function name.
    pub fn from_parameter(parameter: impl ToString) -> Self {
        BenchmarkId {
            function: parameter.to_string(),
            parameter: None,
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: name.to_string(),
            parameter: None,
        }
    }
}

/// Work-per-iteration annotation used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes by time, not samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the per-iteration work for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure given a reference input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.measurement);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.render()), self.throughput);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.measurement);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.render()), self.throughput);
        self
    }

    /// End the group (prints nothing extra; exists for API compatibility).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    measurement: Duration,
    median_ns: Option<f64>,
    min_ns: Option<f64>,
}

impl Bencher {
    fn new(measurement: Duration) -> Self {
        Bencher {
            measurement,
            median_ns: None,
            min_ns: None,
        }
    }

    /// Run `f` repeatedly, recording the median and minimum time per call
    /// over timed batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many calls fit in ~1/10 of the budget?
        let calib_start = Instant::now();
        let mut calls = 0u64;
        while calib_start.elapsed() < self.measurement / 10 {
            black_box(f());
            calls += 1;
        }
        let batch = calls.max(1);
        // Measure fixed-size batches for the remaining budget (>= 5
        // batches so a median exists).
        let mut per_call: Vec<f64> = Vec::new();
        let run_start = Instant::now();
        while run_start.elapsed() < self.measurement || per_call.len() < 5 {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per_call.push(t.elapsed().as_nanos() as f64 / batch as f64);
            if per_call.len() >= 500 {
                break;
            }
        }
        per_call.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        self.median_ns = Some(per_call[per_call.len() / 2]);
        self.min_ns = Some(per_call[0]);
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        let Some(median) = self.median_ns else {
            println!("{id:<44} (no measurement: closure never called b.iter)");
            return;
        };
        let mut line = String::new();
        let _ = write!(line, "{id:<44} median {:>12.1} ns/iter", median);
        if let Some(min) = self.min_ns {
            let _ = write!(line, "  (min {min:>12.1})");
        }
        match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / (median * 1e-9) / 1e6;
                let _ = write!(line, "  {rate:>9.1} Melem/s");
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / (median * 1e-9) / 1e6;
                let _ = write!(line, "  {rate:>9.1} MB/s");
            }
            None => {}
        }
        println!("{line}");
    }
}

/// Opaque-to-the-optimizer identity, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            measurement: Duration::from_millis(20),
        };
        let mut group = c.benchmark_group("shim_selftest");
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
    }
}
