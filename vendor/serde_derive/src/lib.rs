//! Derive macros for the vendored serde shim.
//!
//! No `syn`/`quote` (the build is offline): the input item is parsed by
//! walking the raw `TokenStream`, which is sufficient for the shapes this
//! workspace derives on — non-generic structs with named fields and enums
//! whose variants are unit or struct-like. Anything else is rejected with a
//! compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: Option<Vec<Field>>, // None = unit variant
}

struct Item {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid error tokens")
}

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // '#'
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1; // the [...] group
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parse `name: Type, ...` named fields from the tokens of a brace group.
/// Commas inside angle brackets (`HashMap<K, V>`) do not split fields;
/// commas inside `()`/`[]`/`{}` cannot leak because groups are atomic.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            if i >= tokens.len() {
                break;
            }
            return Err(format!(
                "expected field name, found {:?}",
                tokens[i].to_string()
            ));
        };
        fields.push(Field {
            name: name.to_string(),
        });
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected ':' after field `{name}`")),
        }
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    Ok(fields)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    if kind != "struct" && kind != "enum" {
        return Err(format!("derive supports struct/enum, found `{kind}`"));
    }
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "shim serde derive does not support generics on `{name}`"
            ));
        }
    }
    let Some(TokenTree::Group(body)) = tokens.get(i) else {
        return Err(format!(
            "`{name}`: tuple/unit structs are not supported by the shim derive"
        ));
    };
    if body.delimiter() != Delimiter::Brace {
        return Err(format!("`{name}`: expected a braced body"));
    }
    let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();

    let shape = if kind == "struct" {
        Shape::Struct(parse_named_fields(&body_tokens)?)
    } else {
        let mut variants = Vec::new();
        let mut j = 0usize;
        while j < body_tokens.len() {
            j = skip_attrs_and_vis(&body_tokens, j);
            let Some(TokenTree::Ident(vname)) = body_tokens.get(j) else {
                if j >= body_tokens.len() {
                    break;
                }
                return Err(format!(
                    "expected variant name, found {:?}",
                    body_tokens[j].to_string()
                ));
            };
            let vname = vname.to_string();
            j += 1;
            let fields = match body_tokens.get(j) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    j += 1;
                    Some(parse_named_fields(&inner)?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    return Err(format!(
                        "variant `{vname}`: tuple variants are not supported by the shim derive"
                    ));
                }
                _ => None,
            };
            variants.push(Variant {
                name: vname,
                fields,
            });
            if let Some(TokenTree::Punct(p)) = body_tokens.get(j) {
                if p.as_char() == ',' {
                    j += 1;
                }
            }
        }
        Shape::Enum(variants)
    };
    Ok(Item { name, shape })
}

fn gen_struct_to_value(fields: &[Field], path: &str) -> String {
    let pushes: String = fields
        .iter()
        .map(|f| {
            format!(
                "(String::from(\"{n}\"), ::serde::Serialize::to_value(&{path}{n})),",
                n = f.name
            )
        })
        .collect();
    format!("::serde::Value::Object(vec![{pushes}])")
}

fn gen_struct_from_value(name_path: &str, fields: &[Field], src: &str) -> String {
    let inits: String = fields
        .iter()
        .map(|f| {
            format!(
                "{n}: ::serde::Deserialize::from_value({src}.get(\"{n}\")\
                 .unwrap_or(&::serde::Value::Null))\
                 .map_err(|e| ::serde::DeError(format!(\"{name_path}.{n}: {{}}\", e.0)))?,",
                n = f.name
            )
        })
        .collect();
    format!("Ok({name_path} {{ {inits} }})")
}

/// Derive the shim's [`Serialize`](../serde/trait.Serialize.html).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let body = match &item.shape {
        Shape::Struct(fields) => gen_struct_to_value(fields, "self."),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| match &v.fields {
                    None => format!(
                        "{ty}::{v} => ::serde::Value::String(String::from(\"{v}\")),",
                        ty = item.name,
                        v = v.name
                    ),
                    Some(fields) => {
                        let binds: String = fields.iter().map(|f| format!("{},", f.name)).collect();
                        let obj = gen_struct_to_value(fields, "*");
                        format!(
                            "{ty}::{v} {{ {binds} }} => ::serde::Value::Object(vec![\
                             (String::from(\"{v}\"), {obj})]),",
                            ty = item.name,
                            v = v.name
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        name = item.name
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derive the shim's [`Deserialize`](../serde/trait.Deserialize.html).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let body = match &item.shape {
        Shape::Struct(fields) => gen_struct_from_value(&item.name, fields, "v"),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| format!("\"{v}\" => Ok({ty}::{v}),", ty = item.name, v = v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| v.fields.as_ref().map(|fields| (v, fields)))
                .map(|(v, fields)| {
                    let ctor = gen_struct_from_value(
                        &format!("{}::{}", item.name, v.name),
                        fields,
                        "inner",
                    );
                    format!("\"{v}\" => {{ {ctor} }},", v = v.name)
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\n\
                 other => Err(::serde::DeError(format!(\"unknown variant '{{other}}' for {ty}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                 let (tag, inner) = &fields[0];\n\
                 match tag.as_str() {{\n\
                 {tagged_arms}\n\
                 other => Err(::serde::DeError(format!(\"unknown variant '{{other}}' for {ty}\"))),\n\
                 }}\n\
                 }},\n\
                 other => Err(::serde::DeError::expected(\"{ty} variant\", other)),\n\
                 }}",
                ty = item.name
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n\
         }}\n\
         }}",
        name = item.name
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
