//! The shim's JSON value tree, writer and parser.

use std::fmt;

/// A JSON document.
///
/// Equality compares integers numerically across the `I64`/`U64`
/// representations (the parser picks whichever fits first).
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer that fit in `i64` when parsed (negative literals land here).
    I64(i64),
    /// Non-negative integer.
    U64(u64),
    /// Any other number.
    F64(f64),
    /// String (parsed with JSON escapes).
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            (Value::F64(a), Value::F64(b)) => a == b,
            (a, b) => match (a.as_i64(), b.as_i64()) {
                (Some(x), Some(y)) => x == y,
                _ => matches!((a.as_u64(), b.as_u64()), (Some(x), Some(y)) if x == y),
            },
        }
    }
}

impl Value {
    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view as `u64` (integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(u) => Some(*u),
            Value::I64(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Numeric view as `i64` (integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(i) => Some(*i),
            Value::U64(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// Numeric view as `f64` (any number; `null` reads as NaN, the writer's
    /// encoding for non-finite floats).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::I64(i) => Some(*i as f64),
            Value::U64(u) => Some(*u as f64),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Render as compact JSON text.
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::I64(i) => out.push_str(&i.to_string()),
            Value::U64(u) => out.push_str(&u.to_string()),
            Value::F64(f) => {
                if f.is_finite() {
                    // `{:?}` prints the shortest round-tripping decimal.
                    out.push_str(&format!("{f:?}"));
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Value::String(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Deserialization / parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Shape mismatch: wanted `what`, found `got`.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError(format!("expected {what}, found {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Parse JSON text into a [`Value`].
///
/// # Errors
/// [`DeError`] with a byte offset on malformed input.
pub fn parse_json(input: &str) -> Result<Value, DeError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(DeError(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, DeError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(DeError("unexpected end of input".into())),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(DeError(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(DeError(format!("expected ':' at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(DeError(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, DeError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(DeError(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, DeError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(DeError(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(DeError("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| DeError("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| DeError("bad \\u escape".into()))?,
                            16,
                        )
                        .map_err(|_| DeError("bad \\u escape".into()))?;
                        // Surrogate pairs are not produced by this shim's
                        // writer; reject rather than mis-decode.
                        let c = char::from_u32(code)
                            .ok_or_else(|| DeError("unsupported \\u escape".into()))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(DeError(format!("bad escape at byte {pos}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 character.
                let s =
                    std::str::from_utf8(&b[*pos..]).map_err(|_| DeError("invalid utf-8".into()))?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, DeError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text =
        std::str::from_utf8(&b[start..*pos]).map_err(|_| DeError("invalid number".into()))?;
    if text.is_empty() {
        return Err(DeError(format!("expected value at byte {start}")));
    }
    let is_float = text.contains(['.', 'e', 'E']);
    if !is_float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::I64(i));
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::U64(u));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| DeError(format!("invalid number '{text}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_values() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(7)),
            ("b".into(), Value::I64(-3)),
            ("c".into(), Value::F64(1.5e-9)),
            (
                "d".into(),
                Value::Array(vec![
                    Value::Null,
                    Value::Bool(true),
                    Value::String("x\"y\n".into()),
                ]),
            ),
        ]);
        let mut s = String::new();
        v.write_json(&mut s);
        let back = parse_json(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_precision_round_trips() {
        for f in [0.1, 1.0 / 3.0, 123456789.123456, f64::MIN_POSITIVE, 1e308] {
            let mut s = String::new();
            Value::F64(f).write_json(&mut s);
            match parse_json(&s).unwrap() {
                Value::F64(g) => assert_eq!(f, g),
                Value::U64(u) => assert_eq!(f, u as f64),
                Value::I64(i) => assert_eq!(f, i as f64),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "nul", "01x"] {
            assert!(parse_json(bad).is_err(), "{bad:?} should fail");
        }
    }
}
