//! Offline vendor shim for `serde`.
//!
//! The build environment has no crate registry, so this workspace vendors a
//! *simplified* serde: [`Serialize`] lowers a value to a JSON [`Value`] tree
//! and [`Deserialize`] raises it back. The derive macros (re-exported from
//! the sibling `serde_derive` shim) cover the shapes this workspace uses:
//! structs with named fields and enums with unit or struct variants, with
//! the real serde's externally-tagged enum representation — so JSON written
//! by this shim is readable by the real `serde_json` and vice versa for
//! those shapes.
//!
//! This is not the real serde data model (no serializer abstraction, no
//! zero-copy); it exists so the workspace builds and round-trips its
//! experiment data without network access.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;
pub use value::{DeError, Value};

/// Types that can lower themselves into a JSON [`Value`].
pub trait Serialize {
    /// Lower `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types that can be raised from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Raise a value of `Self` from a [`Value`] tree.
    ///
    /// # Errors
    /// [`DeError`] describing the first shape mismatch encountered.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls ----

macro_rules! impl_ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(u).map_err(|_| DeError::expected(stringify!($t), v))
            }
        }
    )*};
}
impl_ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(i).map_err(|_| DeError::expected(stringify!($t), v))
            }
        }
    )*};
}
impl_ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64().ok_or_else(|| DeError::expected("number", v))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::expected("2-element array", other)),
        }
    }
}
