//! Offline vendor shim for `serde_json`: `to_string` / `from_str` over the
//! shim serde's JSON [`Value`] data model.

#![warn(missing_docs)]

use std::fmt;

pub use serde::value::{parse_json, Value};

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Render any [`serde::Serialize`] value as compact JSON.
///
/// # Errors
/// Infallible for the shim's data model; the `Result` mirrors the real API.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().write_json(&mut out);
    Ok(out)
}

/// Render any [`serde::Serialize`] value as indented JSON.
///
/// # Errors
/// Infallible for the shim's data model; the `Result` mirrors the real API.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    // Compact output re-indented: adequate for config/wisdom files.
    let compact = to_string(value)?;
    Ok(indent_json(&compact))
}

/// Parse JSON text into any [`serde::Deserialize`] type.
///
/// # Errors
/// [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_json(input).map_err(|e| Error(e.0))?;
    T::from_value(&value).map_err(|e| Error(e.0))
}

fn indent_json(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for c in compact.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                depth += 1;
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&vec![1u32, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>("[1,2,3]").unwrap(), vec![1, 2, 3]);
        assert_eq!(to_string(&Some(1.5f64)).unwrap(), "1.5");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
        assert_eq!(to_string(&String::from("a\"b")).unwrap(), "\"a\\\"b\"");
    }

    #[test]
    fn pretty_is_reparseable() {
        let v = vec![vec![1u32, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }
}
