//! Offline vendor shim for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so this
//! workspace vendors the *subset* of the `rand` 0.8 API its members
//! actually use: [`Rng::gen_range`] over integer ranges, [`SeedableRng`],
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — high-quality, deterministic per seed, and stable across
//! platforms, which is all the experiments require (reproducible sampling,
//! not cryptography).
//!
//! To switch to the real crate, point the workspace dependency at a
//! registry version; no source changes are needed for the API used here.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random range a value of type `T` can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniform mantissa bits in [0, 1). The cast to the
                // target type and the affine map can both round *up* (for
                // f32 the unit itself rounds to 1.0 with probability
                // ~2^-25), which would yield the excluded upper bound;
                // clamp to the largest representable value below `end` to
                // keep the half-open contract.
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = self.start + unit * (self.end - self.start);
                if v < self.end { v } else { self.end.next_down() }
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Uniform `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (0.0f64..1.0).sample_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Expand a 64-bit seed into a full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let equal = (0..100).filter(|_| {
            StdRng::seed_from_u64(7); // noise
            a.gen_range(0u32..1000) == c.gen_range(0u32..1000)
        });
        assert!(equal.count() < 50, "different seeds must diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..=9);
            assert!((3..=9).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn float_ranges_never_return_the_exclusive_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        // One-ULP-wide range: any upward rounding in the affine map would
        // land on the excluded bound; the clamp must keep it out.
        let end = f32::from_bits(1.0f32.to_bits() + 1);
        for _ in 0..10_000 {
            let v = rng.gen_range(1.0f32..end);
            assert!(v < end && v >= 1.0, "v = {v}");
            let w = rng.gen_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&w), "w = {w}");
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.gen_range(0usize..8)] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket count {b} out of range");
        }
    }
}
